// Package tcp implements the transport.Transport interface over real TCP
// connections, one mixed-consistency node per OS process.
//
// The paper's runtime assumes exactly one thing of its network: reliable
// FIFO channels between every ordered pair of processes (Section 6). A TCP
// connection gives FIFO bytes between two endpoints, so the backend opens
// one connection per ordered pair: the channel i -> j is the connection
// dialed by i to j's listener, carrying only i's messages to j, with j's
// cumulative acknowledgements flowing back on the same socket. Deliveries
// from different senders arrive on different connections and interleave
// arbitrarily, exactly like the simulated fabric's per-pair queues.
//
// Reliability across connection failures comes from a sequence/ack layer on
// top of TCP: every message on a channel carries a per-channel sequence
// number, the sender keeps each message buffered until the receiver's
// cumulative ack covers it, and after a reconnect the sender replays the
// unacked suffix. The receiver delivers in sequence order and drops
// duplicates, so the channel stays FIFO and exactly-once no matter how many
// times the underlying socket is torn down and re-established. A connection
// supervisor per peer redials with exponential backoff and jitter; sends
// never block (they append to the unbounded per-peer buffer, as the
// non-blocking writes of Section 3 require).
//
// Wire format (all integers big-endian, encoding/binary): every frame is a
// uint32 body length followed by the body; the body's first byte is the
// frame type.
//
//	hello  1 | u32 magic "MXDM" | u32 senderID     (dialer's first frame)
//	msg    2 | u64 seq | u32 from | u32 to | str kind | u32 size
//	         | u32 payloadLen | payload            (payload via codec registry)
//	ack    3 | u64 cumSeq                          (acceptor -> dialer)
//
// Strings are uint32-length-prefixed. Payload encodings are the per-kind
// codecs registered in transport's registry by internal/dsm and
// internal/syncmgr.
package tcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mixedmem/internal/obs"
	"mixedmem/internal/transport"
)

// Frame types.
const (
	frameHello = 1
	frameMsg   = 2
	frameAck   = 3
)

// helloMagic guards against a stranger dialing the port.
const helloMagic = 0x4d58444d // "MXDM"

// maxFrame bounds a frame body; larger frames indicate a corrupt stream.
const maxFrame = 1 << 26

// Config configures a TCP transport for one node.
type Config struct {
	// ID is this process's node identity, 0..len(Peers)-1. Required.
	ID int
	// Peers lists every node's address, indexed by node ID; Peers[ID] is
	// the local listen address. Required.
	Peers []string
	// Listener, when non-nil, is used instead of listening on Peers[ID] —
	// for tests and port-0 deployments that bind first and exchange
	// addresses afterwards.
	Listener net.Listener
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write; a stalled peer counts as a
	// failed connection and triggers a redial (default 10s).
	WriteTimeout time.Duration
	// BackoffBase and BackoffMax shape the dial supervisor's exponential
	// backoff (defaults 25ms and 1s). Each retry sleeps a uniformly random
	// duration in [b/2, b), with b doubling up to BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the backoff jitter (deterministic per (Seed, ID, peer)).
	Seed int64
	// Logf, when non-nil, receives supervisor diagnostics (dial failures,
	// decode errors). Silent by default.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, records transport resilience events —
	// reconnects with their replay counts, in-flight frames parked by a
	// racing ack — into the node's trace ring (internal/obs). Nil, the
	// default, compiles each site down to a nil check.
	Tracer *obs.Tracer
}

func (c *Config) fill() {
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Diag counts supervisor and decode events, for tests and operational
// visibility.
type Diag struct {
	// Dials counts successful outbound connections (first connects and
	// reconnects).
	Dials uint64
	// DialFailures counts failed connection attempts.
	DialFailures uint64
	// Replayed counts messages retransmitted after a reconnect.
	Replayed uint64
	// Duplicates counts received messages dropped by sequence dedup.
	Duplicates uint64
	// DecodeErrors counts inbound frames dropped as undecodable.
	DecodeErrors uint64
}

// Transport is a TCP-backed transport.Transport serving one local node.
type Transport struct {
	id  int
	n   int
	cfg Config
	ln  net.Listener

	inbox *queue
	peers []*peer // indexed by node ID; peers[id] is nil

	// lastSeq[j] is the highest sequence delivered from sender j; it
	// outlives individual connections so replays dedup correctly.
	rmu     sync.Mutex
	lastSeq []uint64

	msgsSent  atomic.Uint64
	bytesSent atomic.Uint64
	nodeSent  []atomic.Uint64
	kinds     sync.Map // string -> *kindCounter

	dials        atomic.Uint64
	dialFailures atomic.Uint64
	replayed     atomic.Uint64
	duplicates   atomic.Uint64
	decodeErrors atomic.Uint64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ transport.Transport = (*Transport)(nil)

// peer is the outbound channel state for one remote node.
type peer struct {
	to   int
	addr string

	mu   sync.Mutex
	cond *sync.Cond
	// buf holds encoded msg frames not yet acked; buf[i] carries sequence
	// base+i+1. next indexes the first frame not yet written to the
	// current connection; a reconnect resets it to 0, replaying the
	// unacked suffix. Frames are pooled buffers (transport.GetBuf); they
	// return to the pool when acked, via the in-flight protocol below.
	buf    [][]byte
	base   uint64
	next   int
	conn   net.Conn
	closed bool
	// tracer is the transport's Config.Tracer (nil = off), cached here so
	// ack handling can record frame-park events without a back-pointer.
	tracer *obs.Tracer
	// inflightHi is the absolute sequence of the last frame the writer
	// goroutine is currently handing to the kernel (0 when idle). An ack can
	// cover an in-flight frame — after a reconnect the receiver re-acks
	// replayed duplicates while the writer is still streaming them — so
	// advanceAck parks such frames on held instead of returning them to the
	// pool; the writer drains held once the write call is over.
	inflightHi uint64
	held       [][]byte
	// wbatch is the writer goroutine's reusable frame-slice scratch. runPeer
	// guarantees a single writer, so only that goroutine touches it.
	wbatch [][]byte
}

// releaseHeld returns parked frames to the buffer pool and clears the
// in-flight window. Caller holds p.mu.
func (p *peer) releaseHeld() {
	for i, f := range p.held {
		transport.PutBuf(f)
		p.held[i] = nil
	}
	p.held = p.held[:0]
	p.inflightHi = 0
}

// ErrInvalidNode is returned for out-of-range node IDs.
var ErrInvalidNode = errors.New("tcp: invalid node id")

var errConnGone = errors.New("tcp: connection replaced or transport closed")

// New creates the transport: it starts listening for its peers and starts
// one connection supervisor per remote node. Dialing is lazy only in the
// sense that failures are retried forever with backoff; peers may come up
// in any order, minutes apart. Callers must Close the transport.
func New(cfg Config) (*Transport, error) {
	cfg.fill()
	n := len(cfg.Peers)
	if n == 0 {
		return nil, fmt.Errorf("tcp: empty peer list")
	}
	if cfg.ID < 0 || cfg.ID >= n {
		return nil, fmt.Errorf("tcp: id %d with %d peers: %w", cfg.ID, n, ErrInvalidNode)
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Peers[cfg.ID])
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Peers[cfg.ID], err)
		}
	}
	t := &Transport{
		id:       cfg.ID,
		n:        n,
		cfg:      cfg,
		ln:       ln,
		inbox:    newQueue(),
		peers:    make([]*peer, n),
		lastSeq:  make([]uint64, n),
		nodeSent: make([]atomic.Uint64, n),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	for j := 0; j < n; j++ {
		if j == cfg.ID {
			continue
		}
		p := &peer{to: j, addr: cfg.Peers[j], tracer: cfg.Tracer}
		p.cond = sync.NewCond(&p.mu)
		t.peers[j] = p
		t.wg.Add(1)
		go t.runPeer(p)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's address (useful with port-0 listeners).
func (t *Transport) Addr() net.Addr { return t.ln.Addr() }

// Nodes returns the number of nodes the transport connects.
func (t *Transport) Nodes() int { return t.n }

// Send enqueues m for FIFO delivery to m.To. It never blocks: remote sends
// append to the peer's unbounded replay buffer, local sends go straight to
// the inbox. The error is non-nil only for invalid node IDs or payloads the
// codec registry cannot encode.
func (t *Transport) Send(m transport.Message) error {
	if m.From != t.id {
		return fmt.Errorf("tcp: send from %d on node %d: %w", m.From, t.id, ErrInvalidNode)
	}
	if m.To < 0 || m.To >= t.n {
		return fmt.Errorf("tcp: send %d->%d: %w", m.From, m.To, ErrInvalidNode)
	}
	if m.To == t.id {
		t.account(m)
		t.inbox.push(m)
		return nil
	}
	payload, err := transport.EncodePayload(transport.GetBuf(), m.Kind, m.Payload)
	if err != nil {
		transport.PutBuf(payload)
		return fmt.Errorf("tcp: send %d->%d kind %q: %w", m.From, m.To, m.Kind, err)
	}
	t.account(m)
	t.peers[m.To].push(m, payload)
	transport.PutBuf(payload) // push copied it into the frame
	// The payload object's pooled internals (for example a batch's entry
	// slice) are fully captured in the encoding; hand them back.
	transport.RecyclePayload(m.Kind, m.Payload)
	return nil
}

// Broadcast sends to every node except the sender.
func (t *Transport) Broadcast(from int, kind string, payload any, size int) error {
	if from != t.id {
		return fmt.Errorf("tcp: broadcast from %d on node %d: %w", from, t.id, ErrInvalidNode)
	}
	enc, err := transport.EncodePayload(transport.GetBuf(), kind, payload)
	if err != nil {
		transport.PutBuf(enc)
		return fmt.Errorf("tcp: broadcast kind %q: %w", kind, err)
	}
	for to := 0; to < t.n; to++ {
		if to == from {
			continue
		}
		m := transport.Message{From: from, To: to, Kind: kind, Payload: payload, Size: size}
		t.account(m)
		t.peers[to].push(m, enc)
	}
	transport.PutBuf(enc)
	transport.RecyclePayload(kind, payload)
	return nil
}

// Recv blocks until a message for the local node is delivered. Recv for any
// other node returns false immediately: a TCP transport instance serves
// exactly one process.
func (t *Transport) Recv(node int) (transport.Message, bool) {
	if node != t.id {
		return transport.Message{}, false
	}
	return t.inbox.pop()
}

// Pending reports the number of messages queued locally for the channel
// from -> to and not yet handed to the kernel. Only outbound channels of
// the local node are visible.
func (t *Transport) Pending(from, to int) int {
	if from != t.id || to < 0 || to >= t.n || to == t.id {
		return 0
	}
	p := t.peers[to]
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf) - p.next
}

// kindCounter accumulates per-kind message and byte totals, mirroring the
// simulated fabric's accounting so experiments read the same shape from
// either backend.
type kindCounter struct {
	msgs  atomic.Uint64
	bytes atomic.Uint64
}

func (t *Transport) account(m transport.Message) {
	t.msgsSent.Add(1)
	t.bytesSent.Add(uint64(m.Size))
	t.nodeSent[m.From].Add(1)
	c, ok := t.kinds.Load(m.Kind)
	if !ok {
		c, _ = t.kinds.LoadOrStore(m.Kind, new(kindCounter))
	}
	kc := c.(*kindCounter)
	kc.msgs.Add(1)
	kc.bytes.Add(uint64(m.Size))
}

// Stats returns a snapshot of the accounting counters. On a distributed
// transport only the local node's sends are visible; per-experiment totals
// are the sum over all processes' snapshots.
func (t *Transport) Stats() transport.Stats {
	s := transport.Stats{
		MessagesSent: t.msgsSent.Load(),
		BytesSent:    t.bytesSent.Load(),
		PerNodeSent:  make([]uint64, t.n),
		PerKind:      make(map[string]uint64),
		PerKindBytes: make(map[string]uint64),
	}
	for i := range s.PerNodeSent {
		s.PerNodeSent[i] = t.nodeSent[i].Load()
	}
	t.kinds.Range(func(k, v any) bool {
		kc := v.(*kindCounter)
		s.PerKind[k.(string)] = kc.msgs.Load()
		s.PerKindBytes[k.(string)] = kc.bytes.Load()
		return true
	})
	return s
}

// Diag returns a snapshot of the supervisor and decode counters.
func (t *Transport) Diag() Diag {
	return Diag{
		Dials:        t.dials.Load(),
		DialFailures: t.dialFailures.Load(),
		Replayed:     t.replayed.Load(),
		Duplicates:   t.duplicates.Load(),
		DecodeErrors: t.decodeErrors.Load(),
	}
}

// Flush blocks until every peer has acknowledged every message sent so far
// or the timeout elapses, whichever is first. It reports whether all
// channels drained. Distributed deployments call it before Close so the
// tail of the conversation (final barrier releases, lock handoffs) reaches
// peers that still need it; Close itself drops unacked messages.
func (t *Transport) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	drained := true
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		for len(p.buf) > 0 && !p.closed && time.Now().Before(deadline) {
			// Poll: acks broadcast the cond, but a dead peer never will,
			// so bound each wait.
			w := time.AfterFunc(10*time.Millisecond, p.cond.Broadcast)
			p.cond.Wait()
			w.Stop()
		}
		if len(p.buf) > 0 {
			drained = false
		}
		p.mu.Unlock()
	}
	return drained
}

// DropConn force-closes the current connection to peer `to`, if any. It is
// a test aid for exercising the reconnect path; the supervisor redials and
// replays unacked messages, so no traffic is lost.
func (t *Transport) DropConn(to int) {
	if to < 0 || to >= t.n || to == t.id {
		return
	}
	p := t.peers[to]
	p.mu.Lock()
	if p.conn != nil {
		p.conn.Close()
	}
	p.mu.Unlock()
}

// Close shuts the transport down: stops the supervisors, closes every
// connection and the listener, and unblocks receivers. Messages not yet
// acked by their destination are dropped, like the fabric's undelivered
// queue contents at Close. Close is idempotent and waits for all internal
// goroutines to exit.
func (t *Transport) Close() {
	t.closeOnce.Do(func() {
		close(t.done)
		t.ln.Close()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			p.closed = true
			if p.conn != nil {
				p.conn.Close()
			}
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		t.connMu.Lock()
		for c := range t.conns {
			c.Close()
		}
		t.connMu.Unlock()
		t.wg.Wait()
		t.inbox.close()
	})
}

// push encodes m into a pooled frame buffer, assigns the channel's next
// sequence number, and appends it to the replay buffer. The frame is encoded
// outside p.mu — only the append needs the lock — and returns to the pool
// when its ack arrives.
func (p *peer) push(m transport.Message, payload []byte) {
	frame := appendMsgFrame(transport.GetBuf(), 0, m, payload)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		transport.PutBuf(frame)
		return
	}
	seq := p.base + uint64(len(p.buf)) + 1
	patchMsgFrameSeq(frame, seq)
	p.buf = append(p.buf, frame)
	p.cond.Signal()
	p.mu.Unlock()
}

// advanceAck trims the replay buffer through the cumulative ack, returning
// acked frames to the buffer pool — except frames the writer goroutine is
// concurrently handing to the kernel, which are parked on held until the
// write call is over.
func (p *peer) advanceAck(cum uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cum <= p.base {
		return
	}
	defer p.cond.Broadcast() // wake Flush waiters
	drop := int(cum - p.base)
	if drop > len(p.buf) {
		drop = len(p.buf)
	}
	for i := 0; i < drop; i++ {
		f := p.buf[i]
		p.buf[i] = nil
		if seq := p.base + uint64(i) + 1; p.inflightHi != 0 && seq <= p.inflightHi {
			p.held = append(p.held, f)
			if p.tracer != nil {
				p.tracer.Record(obs.EvFramePark, 0, uint16(p.to), obs.NoLoc,
					seq, uint64(len(p.held)), 0)
			}
		} else {
			transport.PutBuf(f)
		}
	}
	p.buf = p.buf[drop:]
	p.base += uint64(drop)
	p.next -= drop
	if p.next < 0 {
		p.next = 0
	}
}

// runPeer is the connection supervisor for one outbound channel: dial with
// exponential backoff and jitter, replay the unacked suffix, stream frames,
// and start over whenever the connection dies.
func (t *Transport) runPeer(p *peer) {
	defer t.wg.Done()
	backoff := t.cfg.BackoffBase
	rng := rand.New(rand.NewSource(t.cfg.Seed ^ int64(t.id)*104729 ^ int64(p.to)*7919))
	for {
		select {
		case <-t.done:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", p.addr, t.cfg.DialTimeout)
		if err != nil {
			t.dialFailures.Add(1)
			t.cfg.Logf("tcp: node %d dial %d (%s): %v", t.id, p.to, p.addr, err)
			half := backoff / 2
			sleep := half + time.Duration(rng.Int63n(int64(half)+1))
			select {
			case <-time.After(sleep):
			case <-t.done:
				return
			}
			if backoff < t.cfg.BackoffMax {
				backoff *= 2
				if backoff > t.cfg.BackoffMax {
					backoff = t.cfg.BackoffMax
				}
			}
			continue
		}
		if err := t.writeHello(conn); err != nil {
			t.dialFailures.Add(1)
			conn.Close()
			continue
		}
		t.dials.Add(1)
		backoff = t.cfg.BackoffBase

		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conn = conn
		if p.next > 0 {
			t.replayed.Add(uint64(p.next))
		}
		if t.cfg.Tracer != nil {
			// A counts the frames that will be re-sent as duplicates (same
			// semantics as the Replayed diag counter).
			t.cfg.Tracer.Record(obs.EvReconnect, 0, uint16(p.to), obs.NoLoc,
				t.dials.Load(), uint64(p.next), 0)
		}
		p.next = 0 // replay everything unacked on the fresh connection
		p.cond.Broadcast()
		p.mu.Unlock()

		ackDone := make(chan struct{})
		go t.readAcks(p, conn, ackDone)
		err = t.writeFrames(p, conn)
		conn.Close()
		<-ackDone
		p.mu.Lock()
		if p.conn == conn {
			p.conn = nil
		}
		p.cond.Broadcast()
		p.mu.Unlock()
		if err != nil && !errors.Is(err, errConnGone) {
			t.cfg.Logf("tcp: node %d channel to %d: %v", t.id, p.to, err)
		}
	}
}

func (t *Transport) writeHello(conn net.Conn) error {
	frame := transport.GetBuf()
	frame = transport.AppendUint32(frame, 9)
	frame = append(frame, frameHello)
	frame = transport.AppendUint32(frame, helloMagic)
	frame = transport.AppendUint32(frame, uint32(t.id))
	conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
	_, err := conn.Write(frame)
	transport.PutBuf(frame)
	return err
}

// writeFrames streams the replay buffer to the connection until it fails,
// is replaced, or the transport closes. Each round snapshots the unwritten
// suffix into the writer's reusable scratch and hands it to the kernel as
// one vectored write (net.Buffers → writev), so a flushed outbox batch goes
// out in a single syscall with no intermediate copy.
func (t *Transport) writeFrames(p *peer, conn net.Conn) error {
	for {
		p.mu.Lock()
		p.releaseHeld() // frames acked while the previous write was in flight
		for p.next >= len(p.buf) && p.conn == conn && !p.closed {
			p.cond.Wait()
		}
		if p.closed || p.conn != conn {
			p.mu.Unlock()
			return errConnGone
		}
		p.wbatch = append(p.wbatch[:0], p.buf[p.next:]...)
		p.inflightHi = p.base + uint64(len(p.buf))
		p.next = len(p.buf)
		p.mu.Unlock()

		conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
		bufs := net.Buffers(p.wbatch)
		if _, err := bufs.WriteTo(conn); err != nil {
			p.mu.Lock()
			p.releaseHeld()
			p.mu.Unlock()
			return err
		}
	}
}

// readAcks consumes cumulative acks on an outbound connection. On any read
// error it tears the connection down so the writer redials.
func (t *Transport) readAcks(p *peer, conn net.Conn, done chan struct{}) {
	defer close(done)
	br := bufio.NewReader(conn)
	body := transport.GetBuf()
	defer func() { transport.PutBuf(body) }()
	for {
		var err error
		body, err = readFrame(br, body)
		if err != nil {
			conn.Close()
			p.mu.Lock()
			if p.conn == conn {
				p.conn = nil
			}
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		if len(body) == 9 && body[0] == frameAck {
			p.advanceAck(binary.BigEndian.Uint64(body[1:]))
		}
	}
}

// acceptLoop serves inbound connections until the listener closes.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.connMu.Lock()
		select {
		case <-t.done:
			t.connMu.Unlock()
			conn.Close()
			return
		default:
		}
		t.conns[conn] = struct{}{}
		t.connMu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn receives one peer's channel: validate the hello, then deliver
// msg frames in sequence order, dropping duplicates from replays and acking
// cumulatively on the same socket.
func (t *Transport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.connMu.Lock()
		delete(t.conns, conn)
		t.connMu.Unlock()
	}()
	br := bufio.NewReader(conn)
	// body is the connection's reusable frame buffer: readFrame fills it in
	// place (growing as needed) and every decode copies what it keeps, so one
	// buffer serves every frame of the connection.
	body := transport.GetBuf()
	defer func() { transport.PutBuf(body) }()
	body, err := readFrame(br, body)
	if err != nil || len(body) != 9 || body[0] != frameHello ||
		binary.BigEndian.Uint32(body[1:]) != helloMagic {
		return
	}
	from := int(binary.BigEndian.Uint32(body[5:]))
	if from < 0 || from >= t.n || from == t.id {
		return
	}
	ack := transport.GetBuf()
	defer func() { transport.PutBuf(ack) }()
	for {
		body, err = readFrame(br, body)
		if err != nil {
			return
		}
		if len(body) == 0 || body[0] != frameMsg {
			continue
		}
		m, seq, err := decodeMsgFrame(body)
		if err != nil {
			t.decodeErrors.Add(1)
			t.cfg.Logf("tcp: node %d from %d: %v", t.id, from, err)
			continue
		}
		t.rmu.Lock()
		dup := seq <= t.lastSeq[from]
		if !dup {
			t.lastSeq[from] = seq
		}
		cum := t.lastSeq[from]
		t.rmu.Unlock()
		if dup {
			t.duplicates.Add(1)
		} else {
			t.inbox.push(m)
		}
		ack = ack[:0]
		ack = transport.AppendUint32(ack, 9)
		ack = append(ack, frameAck)
		ack = transport.AppendUint64(ack, cum)
		conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
		if _, err := conn.Write(ack); err != nil {
			return
		}
	}
}

// appendMsgFrame encodes one message as a framed msg record.
func appendMsgFrame(dst []byte, seq uint64, m transport.Message, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length, patched below
	dst = append(dst, frameMsg)
	dst = transport.AppendUint64(dst, seq)
	dst = transport.AppendUint32(dst, uint32(m.From))
	dst = transport.AppendUint32(dst, uint32(m.To))
	dst = transport.AppendString(dst, m.Kind)
	dst = transport.AppendUint32(dst, uint32(m.Size))
	dst = transport.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// patchMsgFrameSeq overwrites the sequence number of a frame produced by
// appendMsgFrame with an empty dst: the sequence sits right after the 4-byte
// length prefix and 1-byte frame type. push encodes outside the peer lock
// with a placeholder sequence and patches the real one once it holds the
// lock and knows the frame's position.
func patchMsgFrameSeq(frame []byte, seq uint64) {
	binary.BigEndian.PutUint64(frame[5:], seq)
}

// decodeMsgFrame parses a msg frame body back into a Message.
func decodeMsgFrame(body []byte) (transport.Message, uint64, error) {
	d := transport.NewDecoder(body[1:])
	seq := d.Uint64()
	m := transport.Message{
		From: int(d.Uint32()),
		To:   int(d.Uint32()),
		Kind: d.String(),
	}
	m.Size = int(d.Uint32())
	plen := int(d.Uint32())
	if err := d.Err(); err != nil {
		return m, seq, err
	}
	if plen != d.Remaining() {
		return m, seq, fmt.Errorf("tcp: payload length %d with %d bytes remaining", plen, d.Remaining())
	}
	if plen > 0 {
		payload, err := transport.DecodePayload(m.Kind, body[len(body)-plen:])
		if err != nil {
			return m, seq, err
		}
		m.Payload = payload
	}
	return m, seq, nil
}

// readFrame reads one length-prefixed frame body into buf, growing it only
// when a frame exceeds its capacity. The caller owns exactly one buffer per
// connection and passes the previous return value back in, so steady-state
// reading allocates nothing; every decode must copy what it keeps out of the
// returned slice before the next call.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return buf, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return buf, fmt.Errorf("tcp: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return buf, err
	}
	return buf, nil
}
