package tcp

import (
	"fmt"
	"net"
	"testing"
	"time"

	"mixedmem/internal/transport"
)

// u64Codec is a test payload codec: a single big-endian uint64.
type u64Codec struct{}

func (u64Codec) Encode(dst []byte, payload any) ([]byte, error) {
	v, ok := payload.(uint64)
	if !ok {
		return nil, fmt.Errorf("tcp test codec: want uint64, got %T", payload)
	}
	return transport.AppendUint64(dst, v), nil
}

func (u64Codec) Decode(data []byte) (any, error) {
	d := transport.NewDecoder(data)
	v := d.Uint64()
	return v, d.Err()
}

func init() { transport.RegisterPayload("tcptest", u64Codec{}) }

func newLoopbackT(t *testing.T, n int) []*Transport {
	t.Helper()
	trs, err := NewLoopback(n, nil)
	if err != nil {
		t.Fatalf("NewLoopback(%d): %v", n, err)
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

// recvT is Recv with a timeout so a delivery bug fails the test instead of
// hanging it.
func recvT(t *testing.T, tr *Transport, node int) transport.Message {
	t.Helper()
	type res struct {
		m  transport.Message
		ok bool
	}
	ch := make(chan res, 1)
	go func() {
		m, ok := tr.Recv(node)
		ch <- res{m, ok}
	}()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatalf("Recv(%d) returned closed", node)
		}
		return r.m
	case <-time.After(10 * time.Second):
		t.Fatalf("Recv(%d) timed out", node)
		return transport.Message{}
	}
}

func TestFIFOExactlyOnceDelivery(t *testing.T) {
	trs := newLoopbackT(t, 3)
	const per = 200
	for _, from := range []int{0, 2} {
		go func(from int) {
			for i := 0; i < per; i++ {
				err := trs[from].Send(transport.Message{
					From: from, To: 1, Kind: "tcptest",
					Payload: uint64(i), Size: 8,
				})
				if err != nil {
					t.Errorf("send %d->1 #%d: %v", from, i, err)
					return
				}
			}
		}(from)
	}
	next := map[int]uint64{0: 0, 2: 0}
	for got := 0; got < 2*per; got++ {
		m := recvT(t, trs[1], 1)
		if m.To != 1 || m.Kind != "tcptest" || m.Size != 8 {
			t.Fatalf("mangled message: %+v", m)
		}
		v, ok := m.Payload.(uint64)
		if !ok {
			t.Fatalf("payload type %T", m.Payload)
		}
		if v != next[m.From] {
			t.Fatalf("from %d: got seq %d, want %d (FIFO violated)", m.From, v, next[m.From])
		}
		next[m.From]++
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	trs := newLoopbackT(t, 3)
	if err := trs[0].Broadcast(0, "tcptest", uint64(42), 8); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	for _, node := range []int{1, 2} {
		m := recvT(t, trs[node], node)
		if m.From != 0 || m.To != node || m.Payload.(uint64) != 42 {
			t.Fatalf("node %d: bad broadcast delivery %+v", node, m)
		}
	}
}

func TestSelfSendBypassesNetwork(t *testing.T) {
	trs := newLoopbackT(t, 2)
	// A payload type no codec could encode still works locally: self-sends
	// never serialize.
	type opaque struct{ s string }
	err := trs[0].Send(transport.Message{From: 0, To: 0, Kind: "no-codec-kind", Payload: opaque{"x"}})
	if err != nil {
		t.Fatalf("self send: %v", err)
	}
	m := recvT(t, trs[0], 0)
	if m.Payload.(opaque).s != "x" {
		t.Fatalf("self send mangled payload: %+v", m)
	}
}

func TestStatsAccounting(t *testing.T) {
	trs := newLoopbackT(t, 3)
	for i := 0; i < 5; i++ {
		if err := trs[0].Send(transport.Message{From: 0, To: 1, Kind: "tcptest", Payload: uint64(i), Size: 10}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := trs[0].Broadcast(0, "other", nil, 3); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	s := trs[0].Stats()
	if s.MessagesSent != 7 {
		t.Fatalf("MessagesSent = %d, want 7", s.MessagesSent)
	}
	if s.BytesSent != 5*10+2*3 {
		t.Fatalf("BytesSent = %d, want %d", s.BytesSent, 5*10+2*3)
	}
	if s.PerNodeSent[0] != 7 || s.PerNodeSent[1] != 0 {
		t.Fatalf("PerNodeSent = %v", s.PerNodeSent)
	}
	if s.PerKind["tcptest"] != 5 || s.PerKind["other"] != 2 {
		t.Fatalf("PerKind = %v", s.PerKind)
	}
}

func TestSendValidation(t *testing.T) {
	trs := newLoopbackT(t, 2)
	if err := trs[0].Send(transport.Message{From: 1, To: 0}); err == nil {
		t.Fatal("send with remote From accepted")
	}
	if err := trs[0].Send(transport.Message{From: 0, To: 5}); err == nil {
		t.Fatal("send to out-of-range node accepted")
	}
	if err := trs[0].Send(transport.Message{From: 0, To: -1}); err == nil {
		t.Fatal("send to negative node accepted")
	}
	if err := trs[0].Broadcast(1, "k", nil, 0); err == nil {
		t.Fatal("broadcast with remote From accepted")
	}
	if _, ok := trs[0].Recv(1); ok {
		t.Fatal("Recv for a remote node returned a message")
	}
	if got := trs[0].Pending(1, 0); got != 0 {
		t.Fatalf("Pending for remote channel = %d", got)
	}
	if got := trs[0].Pending(0, 7); got != 0 {
		t.Fatalf("Pending for out-of-range peer = %d", got)
	}
}

func TestSendUnencodablePayload(t *testing.T) {
	trs := newLoopbackT(t, 2)
	err := trs[0].Send(transport.Message{From: 0, To: 1, Kind: "unregistered", Payload: "boom"})
	if err == nil {
		t.Fatal("send with unregistered payload kind accepted")
	}
	if s := trs[0].Stats(); s.MessagesSent != 0 {
		t.Fatalf("failed send was accounted: %+v", s)
	}
}

func TestFlushDrainsUnackedMessages(t *testing.T) {
	trs := newLoopbackT(t, 2)
	for i := 0; i < 50; i++ {
		if err := trs[0].Send(transport.Message{From: 0, To: 1, Kind: "tcptest", Payload: uint64(i), Size: 8}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if !trs[0].Flush(10 * time.Second) {
		t.Fatal("Flush timed out with a live peer")
	}
	if got := trs[0].Pending(0, 1); got != 0 {
		t.Fatalf("Pending after Flush = %d", got)
	}
}

func TestKillAndReconnectReplaysWithoutLossOrReorder(t *testing.T) {
	trs := newLoopbackT(t, 2)
	const total = 400
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if err := trs[0].Send(transport.Message{From: 0, To: 1, Kind: "tcptest", Payload: uint64(i), Size: 8}); err != nil {
				t.Errorf("send #%d: %v", i, err)
				return
			}
			if i%100 == 50 {
				// Kill the connection mid-stream; the supervisor must
				// redial and replay the unacked suffix.
				trs[0].DropConn(1)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	for want := uint64(0); want < total; want++ {
		m := recvT(t, trs[1], 1)
		if got := m.Payload.(uint64); got != want {
			t.Fatalf("after reconnects: got %d, want %d (lost, duplicated, or reordered)", got, want)
		}
	}
	<-done
	d := trs[0].Diag()
	if d.Dials < 2 {
		t.Fatalf("Dials = %d, want >= 2 (reconnect did not happen)", d.Dials)
	}
	t.Logf("diag after drops: %+v, receiver duplicates: %d", d, trs[1].Diag().Duplicates)
}

func TestSupervisorBacksOffUntilPeerAppears(t *testing.T) {
	// Reserve an address, then close it so dials fail with ECONNREFUSED.
	tmp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	peerAddr := tmp.Addr().String()
	tmp.Close()

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	peers := []string{ln0.Addr().String(), peerAddr}
	t0, err := New(Config{
		ID: 0, Peers: peers, Listener: ln0,
		BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer t0.Close()

	// The supervisor must be retrying with backoff while node 1 is down.
	deadline := time.Now().Add(5 * time.Second)
	for t0.Diag().DialFailures < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no dial retries observed: %+v", t0.Diag())
		}
		time.Sleep(time.Millisecond)
	}
	if err := t0.Send(transport.Message{From: 0, To: 1, Kind: "tcptest", Payload: uint64(7), Size: 8}); err != nil {
		t.Fatalf("send while peer down: %v", err)
	}

	// Node 1 comes up late, on the advertised address.
	ln1, err := net.Listen("tcp", peerAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", peerAddr, err)
	}
	t1, err := New(Config{
		ID: 1, Peers: peers, Listener: ln1,
		BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New late peer: %v", err)
	}
	defer t1.Close()

	m := recvT(t, t1, 1)
	if m.Payload.(uint64) != 7 {
		t.Fatalf("late peer got %+v", m)
	}
	d := t0.Diag()
	if d.Dials < 1 || d.DialFailures < 2 {
		t.Fatalf("diag = %+v, want failures then a successful dial", d)
	}
}

func TestCloseIsIdempotentAndUnblocksReceivers(t *testing.T) {
	trs, err := NewLoopback(2, nil)
	if err != nil {
		t.Fatalf("NewLoopback: %v", err)
	}
	unblocked := make(chan bool, 1)
	go func() {
		_, ok := trs[0].Recv(0)
		unblocked <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	trs[0].Close()
	trs[0].Close() // idempotent
	select {
	case ok := <-unblocked:
		if ok {
			t.Fatal("Recv returned a message from a closed transport")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Recv")
	}
	// Operations on a closed transport must not panic or block.
	if err := trs[0].Send(transport.Message{From: 0, To: 1, Kind: "tcptest", Payload: uint64(1), Size: 8}); err != nil {
		t.Fatalf("send after close errored: %v", err)
	}
	trs[1].Close()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ID: 0}); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := New(Config{ID: 3, Peers: []string{"a", "b"}}); err == nil {
		t.Fatal("out-of-range ID accepted")
	}
	if _, err := NewLoopback(0, nil); err == nil {
		t.Fatal("zero-node loopback accepted")
	}
}

// BenchmarkTransportSendRecv is the TCP counterpart of the fabric's
// BenchmarkFabricSendRecv: one message round from user space through the
// kernel loopback stack and back up, including codec, framing, and ack.
func BenchmarkTransportSendRecv(b *testing.B) {
	trs, err := NewLoopback(2, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trs[0].Send(transport.Message{From: 0, To: 1, Kind: "tcptest", Payload: uint64(i), Size: 64}); err != nil {
			b.Fatal(err)
		}
		if _, ok := trs[1].Recv(1); !ok {
			b.Fatal("closed")
		}
	}
}
