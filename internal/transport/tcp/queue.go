package tcp

import (
	"sync"

	"mixedmem/internal/transport"
)

// queue is the unbounded FIFO inbox of the local node: pushes never block
// (non-blocking writes, Section 3 of the paper), pops block until a message
// arrives or the queue closes. It mirrors the simulated fabric's inbox
// semantics, including the amortized-O(1) consumed-prefix compaction.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []transport.Message
	head   int
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends m; pushing to a closed queue drops the message.
func (q *queue) push(m transport.Message) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, m)
	q.cond.Signal()
}

// pop removes and returns the oldest message, blocking while empty. The
// second result is false once the queue is closed and drained.
func (q *queue) pop() (transport.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == q.head && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == q.head {
		return transport.Message{}, false
	}
	m := q.items[q.head]
	q.items[q.head] = transport.Message{}
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return m, true
}

// close wakes all blocked receivers; already-pushed messages stay poppable.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
