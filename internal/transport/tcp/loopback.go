package tcp

import (
	"fmt"
	"net"
	"time"
)

// NewLoopback builds a fully-wired n-node TCP deployment on 127.0.0.1 with
// kernel-assigned ports: it binds all n listeners first, collects their
// addresses, and only then starts the transports, so there is no port-guess
// race. Benches, tests, and the E8 real-network rerun use it; production
// deployments use New with explicit peer addresses.
//
// On error every listener and transport already created is closed. On
// success the caller owns the transports and must Close each.
func NewLoopback(n int, configure func(*Config)) ([]*Transport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tcp: loopback with %d nodes", n)
	}
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("tcp: loopback listen: %w", err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}
	transports := make([]*Transport, n)
	for i := range transports {
		cfg := Config{
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  250 * time.Millisecond,
		}
		if configure != nil {
			configure(&cfg)
		}
		// The wiring fields are owned by the helper.
		cfg.ID = i
		cfg.Peers = peers
		cfg.Listener = listeners[i]
		tr, err := New(cfg)
		if err != nil {
			for _, t := range transports[:i] {
				t.Close()
			}
			for _, l := range listeners[i:] {
				l.Close()
			}
			return nil, err
		}
		transports[i] = tr
	}
	return transports, nil
}
