package tcp

import (
	"bufio"
	"bytes"
	"testing"

	"mixedmem/internal/transport"

	// Register the dsm payload codecs so fuzz inputs whose Kind names a real
	// payload exercise the full decode path, exactly as a live peer would.
	_ "mixedmem/internal/dsm"
)

// FuzzFrameDecode feeds arbitrary bytes through the peer stream reader —
// frame splitting plus message decoding. The decoder must reject malformed
// input with an error, never panic: this is the surface a hostile or corrupt
// peer controls.
func FuzzFrameDecode(f *testing.F) {
	// A well-formed hello frame.
	var hello []byte
	hello = transport.AppendUint32(hello, 5)
	hello = append(hello, frameHello)
	hello = transport.AppendUint32(hello, helloMagic)
	f.Add(hello)
	// A well-formed msg frame with an unregistered kind and empty payload.
	msg := appendMsgFrame(nil, 1, transport.Message{From: 0, To: 1, Kind: "noop", Size: 4}, nil)
	f.Add(msg)
	// An ack frame.
	var ack []byte
	ack = transport.AppendUint32(ack, 9)
	ack = append(ack, frameAck)
	ack = transport.AppendUint64(ack, 17)
	f.Add(ack)
	// Two frames back to back, the second truncated.
	f.Add(append(append([]byte{}, msg...), 0, 0, 0, 99, frameMsg, 1, 2))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var body []byte
		for {
			var err error
			body, err = readFrame(br, body)
			if err != nil {
				return // stream rejected cleanly
			}
			if len(body) == 0 {
				continue
			}
			switch body[0] {
			case frameMsg:
				_, _, _ = decodeMsgFrame(body)
			case frameHello, frameAck:
				// Fixed-size records; the readers bound-check lengths before
				// trusting them, nothing further to decode here.
			}
		}
	})
}
