package transport

import (
	"errors"
	"testing"
)

type echoCodec struct{}

func (echoCodec) Encode(dst []byte, payload any) ([]byte, error) {
	return AppendString(dst, payload.(string)), nil
}

func (echoCodec) Decode(data []byte) (any, error) {
	d := NewDecoder(data)
	s := d.String()
	return s, d.Err()
}

func TestPayloadRegistry(t *testing.T) {
	RegisterPayload("echo-test", echoCodec{})
	enc, err := EncodePayload(nil, "echo-test", "hello")
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodePayload("echo-test", enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != "hello" {
		t.Fatalf("round trip: %v", got)
	}
}

func TestNilPayloadNeedsNoCodec(t *testing.T) {
	enc, err := EncodePayload(nil, "never-registered", nil)
	if err != nil || len(enc) != 0 {
		t.Fatalf("nil payload: enc=%v err=%v", enc, err)
	}
	got, err := DecodePayload("never-registered", nil)
	if err != nil || got != nil {
		t.Fatalf("empty data: got=%v err=%v", got, err)
	}
}

func TestMissingCodecErrors(t *testing.T) {
	if _, err := EncodePayload(nil, "never-registered", 7); !errors.Is(err, ErrNoCodec) {
		t.Fatalf("encode err = %v, want ErrNoCodec", err)
	}
	if _, err := DecodePayload("never-registered", []byte{1}); !errors.Is(err, ErrNoCodec) {
		t.Fatalf("decode err = %v, want ErrNoCodec", err)
	}
}

func TestWireHelpersRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUint64(b, 1<<40)
	b = AppendUint32(b, 77)
	b = AppendString(b, "loc[3]")
	b = AppendString(b, "") // empty string is legal
	b = AppendUint64s(b, []uint64{5, 0, 9})
	b = AppendUint64s(b, nil)
	b = append(b, 0xAB)

	d := NewDecoder(b)
	if v := d.Uint64(); v != 1<<40 {
		t.Fatalf("Uint64 = %d", v)
	}
	if v := d.Uint32(); v != 77 {
		t.Fatalf("Uint32 = %d", v)
	}
	if s := d.String(); s != "loc[3]" {
		t.Fatalf("String = %q", s)
	}
	if s := d.String(); s != "" {
		t.Fatalf("empty String = %q", s)
	}
	vs := d.Uint64s()
	if len(vs) != 3 || vs[0] != 5 || vs[1] != 0 || vs[2] != 9 {
		t.Fatalf("Uint64s = %v", vs)
	}
	if vs := d.Uint64s(); vs != nil {
		t.Fatalf("nil Uint64s decoded to %v", vs)
	}
	if v := d.Byte(); v != 0xAB {
		t.Fatalf("Byte = %x", v)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestDecoderStickyTruncationError(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if v := d.Uint64(); v != 0 {
		t.Fatalf("truncated Uint64 = %d, want 0", v)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
	// Error is sticky: further reads keep returning zero values.
	if v := d.Uint32(); v != 0 {
		t.Fatalf("read after error = %d", v)
	}
	if s := d.String(); s != "" {
		t.Fatalf("string after error = %q", s)
	}

	// A length prefix larger than the remaining bytes must error, not
	// allocate or panic.
	huge := AppendUint32(nil, 1<<30)
	d = NewDecoder(huge)
	if s := d.String(); s != "" || !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("oversized string: %q, err %v", s, d.Err())
	}
	d = NewDecoder(huge)
	if vs := d.Uint64s(); vs != nil || !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("oversized slice: %v, err %v", vs, d.Err())
	}
}
