package transport

import "sync"

// Encode-buffer pool shared by wire transports and payload codecs
// (DESIGN.md §12). Hot paths that need a scratch []byte — frame encoding,
// control messages, acks — draw from here instead of allocating per message.
//
// Lifecycle contract: a buffer obtained with GetBuf is exclusively owned
// until PutBuf; it must not be retained (directly or via sub-slices that
// escape) after PutBuf returns it. Callers that hand encoded bytes onward
// must either copy them out first (the tcp frame writer copies the payload
// into the frame) or transfer ownership and never return the buffer.
//
// The pool is a mutex-guarded freelist rather than a sync.Pool: Put on a
// sync.Pool boxes the slice header, which itself allocates, and these
// buffers back paths with allocs-per-op tests pinning them at zero.
var bufPool struct {
	mu   sync.Mutex
	free [][]byte
}

// bufPoolMax bounds the freelist length; excess buffers are dropped to the
// garbage collector. 64 in-flight scratch buffers is far beyond what the
// per-peer writer goroutines and codecs hold at once.
const bufPoolMax = 64

// GetBuf returns an empty byte slice with at least 512 bytes of capacity.
func GetBuf() []byte {
	p := &bufPool
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b[:0]
	}
	p.mu.Unlock()
	return make([]byte, 0, 512)
}

// PutBuf returns a buffer to the pool. The caller must not use b (or any
// alias of its backing array) afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	p := &bufPool
	p.mu.Lock()
	if len(p.free) < bufPoolMax {
		p.free = append(p.free, b[:0])
	}
	p.mu.Unlock()
}

// Payload recyclers let protocol packages reclaim payload-owned buffers once
// a wire transport has encoded the payload into a frame. The in-process
// fabric delivers payloads by reference and never calls these — there the
// receiver recycles. See updateSlicePool in internal/dsm for the canonical
// lifecycle.
var (
	recycleMu sync.RWMutex
	recyclers = make(map[string]func(any))
)

// RegisterRecycler installs the post-encode reclaim hook for a message kind.
// Protocol packages call it from init; later registrations replace earlier
// ones.
func RegisterRecycler(kind string, fn func(any)) {
	recycleMu.Lock()
	defer recycleMu.Unlock()
	recyclers[kind] = fn
}

// RecyclePayload invokes the kind's reclaim hook, if any. Wire transports
// call it exactly once per sent message, after the payload's bytes are fully
// copied into the outgoing frame; the payload must not be used afterwards.
func RecyclePayload(kind string, payload any) {
	if payload == nil {
		return
	}
	recycleMu.RLock()
	fn := recyclers[kind]
	recycleMu.RUnlock()
	if fn != nil {
		fn(payload)
	}
}
