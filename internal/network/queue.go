package network

import "sync"

// queue is an unbounded FIFO queue safe for concurrent use. Senders never
// block; receivers block until an element arrives or the queue is closed.
// The mixed-consistency memory model requires non-blocking writes (Section 3
// of the paper), so per-channel buffering must be unbounded.
type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	// items[head:] are the queued messages. Pops advance head instead of
	// shifting, so pop stays O(1) even when a producer floods the queue;
	// the consumed prefix is compacted away once it dominates the slice.
	items  []Message
	head   int
	closed bool
	// held pauses delivery without affecting enqueues; used by the test
	// fabric to build adversarial delivery schedules.
	held bool
	// inflight is true while the pump holds a popped message it has not yet
	// pushed to the destination inbox. The sender-side bypass (tryBypass)
	// must not overtake such a message, or per-channel FIFO would break.
	inflight bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends m. Pushing to a closed queue silently drops the message; the
// fabric is shutting down and nobody will receive it.
func (q *queue) push(m Message) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, m)
	q.cond.Signal()
}

// pop removes and returns the oldest message. It blocks while the queue is
// empty or held. The second result is false once the queue is closed and
// drained.
func (q *queue) pop() (Message, bool) { return q.popImpl(false) }

// popInflight is pop for the pair-channel pump: it additionally marks the
// popped message as in flight, disabling the sender-side bypass until the
// pump acknowledges inbox delivery via delivered.
func (q *queue) popInflight() (Message, bool) { return q.popImpl(true) }

func (q *queue) popImpl(markInflight bool) (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for (len(q.items) == q.head || q.held) && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == q.head || (q.held && q.closed) {
		return Message{}, false
	}
	m := q.items[q.head]
	q.items[q.head] = Message{} // release payload references
	q.head++
	// Compact once the consumed prefix dominates, amortizing to O(1) per
	// pop while letting the backing array shrink after bursts.
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	if markInflight {
		q.inflight = true
	}
	return m, true
}

// delivered clears the in-flight mark set by popInflight.
func (q *queue) delivered() {
	q.mu.Lock()
	q.inflight = false
	q.mu.Unlock()
}

// tryBypass delivers m straight into inbox when the channel is completely
// idle: nothing queued, nothing in the pump's hands, delivery not held. The
// caller has already established that the latency model is zero. Holding
// q.mu across the inbox push serializes bypassing senders with each other
// and with the pump, so per-channel FIFO order is exactly the order in which
// senders won q.mu — the same guarantee the queue itself provides. The
// bypass exists because a pump handoff costs a goroutine wakeup per message,
// which dominates the zero-latency fabrics the perf harness measures.
func (q *queue) tryBypass(m Message, inbox *queue) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return true // push would drop it too
	}
	if q.held || q.inflight || len(q.items) != q.head {
		q.mu.Unlock()
		return false
	}
	inbox.push(m)
	q.mu.Unlock()
	return true
}

// hold pauses delivery: pop blocks even when messages are queued.
func (q *queue) hold() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.held = true
}

// release resumes delivery.
func (q *queue) release() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.held = false
	q.cond.Broadcast()
}

// close wakes all blocked receivers. Queued messages already pushed remain
// poppable unless the queue is held.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// len reports the number of queued messages.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}
