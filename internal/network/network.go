// Package network simulates the message-passing substrate assumed by the
// paper's implementation sketch (Section 6): a set of processes connected by
// reliable FIFO channels.
//
// The fabric provides:
//
//   - one unbounded FIFO channel per ordered pair of nodes, so delivery
//     between any two processes preserves send order while deliveries from
//     different senders interleave arbitrarily;
//   - a configurable latency model (fixed per-message cost, per-byte cost,
//     and seeded jitter) so benchmarks can charge realistic relative costs
//     to protocols that exchange different numbers and sizes of messages;
//   - per-channel Hold/Release controls that pause delivery without
//     violating FIFO, used by tests to build adversarial schedules (for
//     example, the schedule that shows PRAM reads are insufficient for the
//     handshake equation solver of Figure 3);
//   - message and byte accounting per node and per message kind.
//
// The fabric is in-process: "sending" enqueues onto the pair's queue and a
// delivery goroutine moves messages into the destination node's inbox after
// the modeled latency. This preserves exactly the ordering guarantees of the
// paper's model while keeping experiments deterministic and laptop-scale.
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Message is a unit of communication between two nodes.
type Message struct {
	// From and To identify the sending and receiving nodes.
	From, To int
	// Kind labels the protocol message type (for example "update",
	// "lock-req", "barrier-arrive") for accounting and debugging.
	Kind string
	// Payload carries the protocol-specific body.
	Payload any
	// Size is the modeled wire size in bytes, used by the latency model
	// and the byte accounting. Senders that do not care pass 0.
	Size int
}

// LatencyModel describes how long a message takes to deliver.
type LatencyModel struct {
	// Fixed is charged to every message.
	Fixed time.Duration
	// PerByte is charged once per byte of Message.Size.
	PerByte time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
}

// delay computes the modeled delivery time for a message of the given size.
func (m LatencyModel) delay(size int, r *rand.Rand) time.Duration {
	d := m.Fixed + time.Duration(size)*m.PerByte
	if m.Jitter > 0 && r != nil {
		d += time.Duration(r.Int63n(int64(m.Jitter)))
	}
	return d
}

// zero reports whether the model never delays messages.
func (m LatencyModel) zero() bool {
	return m.Fixed == 0 && m.PerByte == 0 && m.Jitter == 0
}

// Config configures a Fabric.
type Config struct {
	// Nodes is the number of processes; node IDs are 0..Nodes-1.
	Nodes int
	// Latency is the delivery latency model. The zero value delivers
	// immediately, which is the deterministic mode used by tests.
	Latency LatencyModel
	// Seed seeds the jitter source. Ignored when Latency.Jitter is zero.
	Seed int64
	// InboxKinds, when non-nil, restricts accounting detail to the listed
	// kinds; all kinds are always counted in the totals.
	InboxKinds []string
}

// Stats is a snapshot of fabric accounting.
//
// Copy-on-read contract: every producer (Fabric.Stats, the tcp transport's
// Stats) builds the slice and maps fresh on each call, so a snapshot is
// never aliased by live counters — callers may hold, mutate, or hand it to
// another goroutine freely while traffic continues. Clone extends the same
// guarantee to copies of a snapshot.
type Stats struct {
	// MessagesSent and BytesSent are totals across all nodes.
	MessagesSent uint64
	BytesSent    uint64
	// PerNodeSent counts messages sent by each node.
	PerNodeSent []uint64
	// PerKind counts messages sent per Kind label.
	PerKind map[string]uint64
	// PerKindBytes counts modeled wire bytes sent per Kind label. Batching
	// experiments read it to separate frame-count savings from payload
	// growth: a batch frame is one message but carries many updates' bytes.
	PerKindBytes map[string]uint64
}

// Clone returns a deep copy: the slice and both maps are duplicated, so
// mutating either snapshot never shows through the other.
func (s Stats) Clone() Stats {
	out := s
	if s.PerNodeSent != nil {
		out.PerNodeSent = append([]uint64(nil), s.PerNodeSent...)
	}
	if s.PerKind != nil {
		out.PerKind = make(map[string]uint64, len(s.PerKind))
		for k, v := range s.PerKind {
			out.PerKind[k] = v
		}
	}
	if s.PerKindBytes != nil {
		out.PerKindBytes = make(map[string]uint64, len(s.PerKindBytes))
		for k, v := range s.PerKindBytes {
			out.PerKindBytes[k] = v
		}
	}
	return out
}

// String formats the stats compactly for experiment output.
func (s Stats) String() string {
	kinds := make([]string, 0, len(s.PerKind))
	for k := range s.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := fmt.Sprintf("msgs=%d bytes=%d", s.MessagesSent, s.BytesSent)
	for _, k := range kinds {
		out += fmt.Sprintf(" %s=%d", k, s.PerKind[k])
	}
	return out
}

// Fabric is a simulated message-passing network with reliable FIFO channels
// between every ordered pair of nodes.
type Fabric struct {
	n       int
	latency LatencyModel

	// pairs[i*n+j] is the channel from node i to node j.
	pairs []*queue
	// delayFactor[i*n+j] scales the latency model on the i->j channel in
	// 1/1000ths (1000 = nominal). Heterogeneous link speeds let
	// experiments model congested or remote paths.
	delayFactor []atomic.Int64
	// inboxes[j] receives delivered messages for node j.
	inboxes []*queue

	msgsSent  atomic.Uint64
	bytesSent atomic.Uint64
	nodeSent  []atomic.Uint64

	// kinds maps Kind label -> *kindCounter. A lock-free map keeps the
	// accounting off the send hot path: after the first message of a kind
	// the counter bump is a Load plus two atomic Adds, with no mutex shared
	// across senders.
	kinds sync.Map

	rngMu sync.Mutex
	rng   *rand.Rand

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// ErrInvalidNode is returned for out-of-range node IDs.
var ErrInvalidNode = errors.New("network: invalid node id")

// New creates a fabric with cfg.Nodes nodes and starts its delivery workers.
// Callers must Close the fabric to stop the workers.
func New(cfg Config) (*Fabric, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("network: %d nodes: %w", cfg.Nodes, ErrInvalidNode)
	}
	f := &Fabric{
		n:           cfg.Nodes,
		latency:     cfg.Latency,
		pairs:       make([]*queue, cfg.Nodes*cfg.Nodes),
		delayFactor: make([]atomic.Int64, cfg.Nodes*cfg.Nodes),
		inboxes:     make([]*queue, cfg.Nodes),
		nodeSent:    make([]atomic.Uint64, cfg.Nodes),
		done:        make(chan struct{}),
	}
	for i := range f.delayFactor {
		f.delayFactor[i].Store(1000)
	}
	if cfg.Latency.Jitter > 0 {
		f.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	for j := range f.inboxes {
		f.inboxes[j] = newQueue()
	}
	for i := 0; i < cfg.Nodes; i++ {
		for j := 0; j < cfg.Nodes; j++ {
			q := newQueue()
			f.pairs[i*cfg.Nodes+j] = q
			f.wg.Add(1)
			go f.pump(q, f.inboxes[j], &f.delayFactor[i*cfg.Nodes+j])
		}
	}
	return f, nil
}

// pump moves messages from one pair channel into the destination inbox,
// sleeping the modeled latency per message. Sequential processing preserves
// per-pair FIFO order.
func (f *Fabric) pump(src, dst *queue, factor *atomic.Int64) {
	defer f.wg.Done()
	for {
		m, ok := src.popInflight()
		if !ok {
			return
		}
		if !f.latency.zero() {
			var d time.Duration
			if f.rng != nil {
				f.rngMu.Lock()
				d = f.latency.delay(m.Size, f.rng)
				f.rngMu.Unlock()
			} else {
				d = f.latency.delay(m.Size, nil)
			}
			d = time.Duration(int64(d) * factor.Load() / 1000)
			if d > 0 {
				select {
				case <-time.After(d):
				case <-f.done:
					return
				}
			}
		}
		dst.push(m)
		src.delivered()
	}
}

// Nodes returns the number of nodes in the fabric.
func (f *Fabric) Nodes() int { return f.n }

// Send enqueues m for delivery on the (m.From, m.To) channel. It never
// blocks. Send returns an error only for invalid node IDs.
func (f *Fabric) Send(m Message) error {
	if m.From < 0 || m.From >= f.n || m.To < 0 || m.To >= f.n {
		return fmt.Errorf("network: send %d->%d: %w", m.From, m.To, ErrInvalidNode)
	}
	f.account(m)
	f.deliver(m.From, m.To, m)
	return nil
}

// deliver routes m onto the (from, to) channel. With a zero latency model it
// first tries the idle-channel bypass, which hands the message straight to
// the destination inbox without waking the pair's pump goroutine; otherwise
// (or when the channel is busy, held, or modeled with latency) it enqueues
// for the pump as usual.
func (f *Fabric) deliver(from, to int, m Message) {
	q := f.pairs[from*f.n+to]
	if f.latency.zero() && q.tryBypass(m, f.inboxes[to]) {
		return
	}
	q.push(m)
}

// Broadcast sends m to every node except the sender. The per-destination
// copies share From, Kind, Payload, and Size.
func (f *Fabric) Broadcast(from int, kind string, payload any, size int) error {
	if from < 0 || from >= f.n {
		return fmt.Errorf("network: broadcast from %d: %w", from, ErrInvalidNode)
	}
	for to := 0; to < f.n; to++ {
		if to == from {
			continue
		}
		m := Message{From: from, To: to, Kind: kind, Payload: payload, Size: size}
		f.account(m)
		f.deliver(from, to, m)
	}
	return nil
}

// kindCounter accumulates per-kind message and byte totals.
type kindCounter struct {
	msgs  atomic.Uint64
	bytes atomic.Uint64
}

func (f *Fabric) account(m Message) {
	f.msgsSent.Add(1)
	f.bytesSent.Add(uint64(m.Size))
	f.nodeSent[m.From].Add(1)
	c, ok := f.kinds.Load(m.Kind)
	if !ok {
		c, _ = f.kinds.LoadOrStore(m.Kind, new(kindCounter))
	}
	kc := c.(*kindCounter)
	kc.msgs.Add(1)
	kc.bytes.Add(uint64(m.Size))
}

// Recv blocks until a message for node is delivered. The second result is
// false after the fabric is closed and the inbox drained.
func (f *Fabric) Recv(node int) (Message, bool) {
	if node < 0 || node >= f.n {
		return Message{}, false
	}
	return f.inboxes[node].pop()
}

// Pending reports the number of undelivered messages queued on the channel
// from -> to. It is a test aid.
func (f *Fabric) Pending(from, to int) int {
	if from < 0 || from >= f.n || to < 0 || to >= f.n {
		return 0
	}
	return f.pairs[from*f.n+to].len()
}

// Hold pauses delivery on the channel from -> to. Messages continue to be
// accepted and remain queued in FIFO order. Tests use Hold/Release to build
// adversarial delivery schedules that are still legal under the FIFO-channel
// model.
func (f *Fabric) Hold(from, to int) error {
	if from < 0 || from >= f.n || to < 0 || to >= f.n {
		return fmt.Errorf("network: hold %d->%d: %w", from, to, ErrInvalidNode)
	}
	f.pairs[from*f.n+to].hold()
	return nil
}

// Release resumes delivery on the channel from -> to.
func (f *Fabric) Release(from, to int) error {
	if from < 0 || from >= f.n || to < 0 || to >= f.n {
		return fmt.Errorf("network: release %d->%d: %w", from, to, ErrInvalidNode)
	}
	f.pairs[from*f.n+to].release()
	return nil
}

// Isolate holds every channel into and out of node. Heal with Rejoin.
func (f *Fabric) Isolate(node int) error {
	if node < 0 || node >= f.n {
		return fmt.Errorf("network: isolate %d: %w", node, ErrInvalidNode)
	}
	for other := 0; other < f.n; other++ {
		if other == node {
			continue
		}
		f.pairs[node*f.n+other].hold()
		f.pairs[other*f.n+node].hold()
	}
	return nil
}

// Rejoin releases every channel into and out of node.
func (f *Fabric) Rejoin(node int) error {
	if node < 0 || node >= f.n {
		return fmt.Errorf("network: rejoin %d: %w", node, ErrInvalidNode)
	}
	for other := 0; other < f.n; other++ {
		if other == node {
			continue
		}
		f.pairs[node*f.n+other].release()
		f.pairs[other*f.n+node].release()
	}
	return nil
}

// SetDelayFactor scales the latency model on the from -> to channel: 1.0 is
// nominal, 10 makes the link ten times slower. Heterogeneous link speeds
// model congested or remote paths; the ablation experiments use them to
// separate the propagation modes. Factors below 0.001 are clamped to 0.001.
func (f *Fabric) SetDelayFactor(from, to int, factor float64) error {
	if from < 0 || from >= f.n || to < 0 || to >= f.n {
		return fmt.Errorf("network: delay factor %d->%d: %w", from, to, ErrInvalidNode)
	}
	milli := int64(factor * 1000)
	if milli < 1 {
		milli = 1
	}
	f.delayFactor[from*f.n+to].Store(milli)
	return nil
}

// Stats returns a snapshot of the accounting counters.
func (f *Fabric) Stats() Stats {
	s := Stats{
		MessagesSent: f.msgsSent.Load(),
		BytesSent:    f.bytesSent.Load(),
		PerNodeSent:  make([]uint64, f.n),
		PerKind:      make(map[string]uint64),
		PerKindBytes: make(map[string]uint64),
	}
	for i := range s.PerNodeSent {
		s.PerNodeSent[i] = f.nodeSent[i].Load()
	}
	f.kinds.Range(func(k, v any) bool {
		kc := v.(*kindCounter)
		s.PerKind[k.(string)] = kc.msgs.Load()
		s.PerKindBytes[k.(string)] = kc.bytes.Load()
		return true
	})
	return s
}

// Close stops all delivery workers and unblocks receivers. It is idempotent
// and waits for the workers to exit.
func (f *Fabric) Close() {
	f.closeOnce.Do(func() {
		close(f.done)
		for _, q := range f.pairs {
			q.close()
		}
		f.wg.Wait()
		for _, q := range f.inboxes {
			q.close()
		}
	})
}
