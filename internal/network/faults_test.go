package network

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFaultInjectionConcurrentSafety hammers every fault-injection control
// concurrently with live traffic. Run under -race this pins down the locking
// of Hold/Release/Isolate/Rejoin/SetDelayFactor against Send/Broadcast/Recv
// and the lock-free kind accounting.
func TestFaultInjectionConcurrentSafety(t *testing.T) {
	const n = 4
	f := newTestFabric(t, n)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Senders: every node broadcasts and point-sends under several kinds.
	var sent atomic.Uint64
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			kinds := []string{"a", "b", "c"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = f.Send(Message{From: id, To: (id + 1) % n, Kind: kinds[i%3], Size: i % 128})
				_ = f.Broadcast(id, "chaff", nil, 8)
				sent.Add(uint64(n)) // 1 send + n-1 broadcast copies
			}
		}(id)
	}
	// Receivers: drain inboxes so held channels are the only backlog. They
	// park in Recv, so they join a separate group unblocked by Close.
	var recvWG sync.WaitGroup
	var received atomic.Uint64
	for id := 0; id < n; id++ {
		recvWG.Add(1)
		go func(id int) {
			defer recvWG.Done()
			for {
				if _, ok := f.Recv(id); !ok {
					return
				}
				received.Add(1)
			}
		}(id)
	}
	// Fault injectors: isolate/rejoin nodes, hold/release and retime
	// individual channels, and snapshot stats, all concurrently.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				node := (w + i) % n
				from, to := i%n, (i+w+1)%n
				_ = f.Isolate(node)
				_ = f.Hold(from, to)
				_ = f.SetDelayFactor(from, to, float64(i%5)+0.5)
				_ = f.Stats()
				_ = f.Pending(from, to)
				_ = f.Rejoin(node)
				_ = f.Release(from, to)
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait() // senders and injectors are done; receivers keep draining

	// Heal everything deterministically, then verify the fabric still
	// delivers on every channel: the accounting totals must be reachable.
	for node := 0; node < n; node++ {
		if err := f.Rejoin(node); err != nil {
			t.Fatalf("final rejoin %d: %v", node, err)
		}
		for other := 0; other < n; other++ {
			_ = f.Release(node, other)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < sent.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("after heal: received %d of %d sent", received.Load(), sent.Load())
		}
		time.Sleep(time.Millisecond)
	}
	f.Close() // unblock receivers parked in Recv
	recvWG.Wait()
	s := f.Stats()
	if s.MessagesSent < sent.Load() {
		t.Fatalf("stats lost sends: %d < %d", s.MessagesSent, sent.Load())
	}
	if s.PerKind["a"] == 0 || s.PerKind["chaff"] == 0 {
		t.Fatalf("per-kind accounting dropped labels: %v", s.PerKind)
	}
}

func TestIsolateRejoinInvalidNode(t *testing.T) {
	f := newTestFabric(t, 2)
	for _, node := range []int{-1, 2, 99} {
		if err := f.Isolate(node); err == nil {
			t.Fatalf("Isolate(%d) accepted", node)
		}
		if err := f.Rejoin(node); err == nil {
			t.Fatalf("Rejoin(%d) accepted", node)
		}
	}
}

// TestOperationsAfterClose verifies every fabric entry point is safe to call
// on a closed fabric: no panic, no deadlock, receivers see closed.
func TestOperationsAfterClose(t *testing.T) {
	f, err := New(Config{Nodes: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f.Close()
	f.Close() // idempotent

	if err := f.Send(Message{From: 0, To: 1, Kind: "late"}); err != nil {
		t.Fatalf("Send after close errored: %v", err)
	}
	if err := f.Broadcast(0, "late", nil, 0); err != nil {
		t.Fatalf("Broadcast after close errored: %v", err)
	}
	if _, ok := f.Recv(1); ok {
		t.Fatal("Recv on closed fabric returned a message")
	}
	if err := f.Hold(0, 1); err != nil {
		t.Fatalf("Hold after close: %v", err)
	}
	if err := f.Release(0, 1); err != nil {
		t.Fatalf("Release after close: %v", err)
	}
	if err := f.Isolate(1); err != nil {
		t.Fatalf("Isolate after close: %v", err)
	}
	if err := f.Rejoin(1); err != nil {
		t.Fatalf("Rejoin after close: %v", err)
	}
	if err := f.SetDelayFactor(0, 1, 2); err != nil {
		t.Fatalf("SetDelayFactor after close: %v", err)
	}
	if got := f.Pending(0, 1); got == 0 {
		// Sends after close are accepted but dropped by the closed queue;
		// accounting still records them.
		if s := f.Stats(); s.MessagesSent == 0 {
			t.Fatal("accounting lost post-close sends")
		}
	}
}

// BenchmarkFabricAccountParallel stresses the accounting hot path from many
// senders at once — the case the lock-free kind counters exist for.
func BenchmarkFabricAccountParallel(b *testing.B) {
	f, err := New(Config{Nodes: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	// Drain inboxes so queues do not grow unboundedly.
	var wg sync.WaitGroup
	for id := 0; id < 8; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				if _, ok := f.Recv(id); !ok {
					return
				}
			}
		}(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		kinds := []string{"update", "lock-req", "bar-arrive"}
		i := 0
		for pb.Next() {
			_ = f.Send(Message{From: i % 8, To: (i + 1) % 8, Kind: kinds[i%3], Size: 64})
			i++
		}
	})
	b.StopTimer()
	f.Close()
	wg.Wait()
}
