package network

import (
	"reflect"
	"sync"
	"testing"
)

// TestStatsClone pins the deep-copy contract: mutating a clone never shows
// through the original, for the slice and both maps.
func TestStatsClone(t *testing.T) {
	s := Stats{
		MessagesSent: 10,
		BytesSent:    100,
		PerNodeSent:  []uint64{4, 6},
		PerKind:      map[string]uint64{"update": 10},
		PerKindBytes: map[string]uint64{"update": 100},
	}
	c := s.Clone()
	if !reflect.DeepEqual(s, c) {
		t.Fatalf("clone differs:\n%+v\n%+v", s, c)
	}
	c.PerNodeSent[0] = 99
	c.PerKind["update"] = 99
	c.PerKindBytes["extra"] = 1
	if s.PerNodeSent[0] != 4 || s.PerKind["update"] != 10 || len(s.PerKindBytes) != 1 {
		t.Fatalf("clone aliases the original: %+v", s)
	}
	// Zero-value snapshots clone without inventing containers.
	z := Stats{}.Clone()
	if z.PerNodeSent != nil || z.PerKind != nil || z.PerKindBytes != nil {
		t.Fatalf("zero clone allocated containers: %+v", z)
	}
}

// TestStatsSnapshotConcurrentWithTraffic is the copy-on-read race proof
// (run with -race): snapshots taken while senders hammer the fabric are
// freely mutable and internally consistent — no snapshot state is shared
// with the live counters.
func TestStatsSnapshotConcurrentWithTraffic(t *testing.T) {
	f, err := New(Config{Nodes: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	// Drain receivers so the queues stay bounded in spirit (they are
	// unbounded, but draining exercises delivery too).
	for j := 0; j < 3; j++ {
		go func(j int) {
			for {
				if _, ok := f.Recv(j); !ok {
					return
				}
			}
		}(j)
	}

	var senders sync.WaitGroup
	for i := 0; i < 2; i++ {
		senders.Add(1)
		go func(i int) {
			defer senders.Done()
			for k := 0; k < 2000; k++ {
				_ = f.Send(Message{From: i, To: (i + 1) % 3, Kind: "update", Size: 8})
				_ = f.Broadcast(i, "flag", nil, 4)
			}
		}(i)
	}
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := f.Stats()
			// Mutating the snapshot must be safe mid-traffic.
			s.PerKind["injected"] = 1
			if len(s.PerNodeSent) > 0 {
				s.PerNodeSent[0]++
			}
			c := s.Clone()
			if c.PerKind["injected"] != 1 {
				t.Error("clone lost a key")
				return
			}
		}
	}()
	senders.Wait()
	close(stop)
	<-snapDone

	s := f.Stats()
	if s.PerKind["injected"] != 0 {
		t.Fatalf("snapshot mutation leaked into the fabric: %+v", s)
	}
	if s.MessagesSent == 0 || s.PerKind["update"] == 0 {
		t.Fatalf("no traffic accounted: %+v", s)
	}
}
