package network

import (
	"sync"
	"testing"
	"time"
)

func newTestFabric(t *testing.T, n int) *Fabric {
	t.Helper()
	f, err := New(Config{Nodes: n})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := New(Config{Nodes: -3}); err == nil {
		t.Fatal("expected error for negative nodes")
	}
}

func TestSendRecv(t *testing.T) {
	f := newTestFabric(t, 2)
	if err := f.Send(Message{From: 0, To: 1, Kind: "ping", Payload: 42}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, ok := f.Recv(1)
	if !ok {
		t.Fatal("Recv returned closed")
	}
	if m.From != 0 || m.To != 1 || m.Kind != "ping" || m.Payload.(int) != 42 {
		t.Errorf("unexpected message: %+v", m)
	}
}

func TestSendInvalidNodes(t *testing.T) {
	f := newTestFabric(t, 2)
	for _, m := range []Message{
		{From: -1, To: 0}, {From: 0, To: 2}, {From: 5, To: 1},
	} {
		if err := f.Send(m); err == nil {
			t.Errorf("Send(%+v) succeeded, want error", m)
		}
	}
}

func TestFIFOPerChannel(t *testing.T) {
	f := newTestFabric(t, 2)
	const n = 500
	for i := 0; i < n; i++ {
		if err := f.Send(Message{From: 0, To: 1, Kind: "seq", Payload: i}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		m, ok := f.Recv(1)
		if !ok {
			t.Fatal("fabric closed early")
		}
		if got := m.Payload.(int); got != i {
			t.Fatalf("message %d arrived out of order: got payload %d", i, got)
		}
	}
}

func TestFIFOPerSenderUnderConcurrency(t *testing.T) {
	f := newTestFabric(t, 3)
	const n = 200
	var wg sync.WaitGroup
	for _, from := range []int{0, 1} {
		from := from
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				_ = f.Send(Message{From: from, To: 2, Kind: "seq", Payload: i})
			}
		}()
	}
	wg.Wait()
	last := map[int]int{0: -1, 1: -1}
	for i := 0; i < 2*n; i++ {
		m, ok := f.Recv(2)
		if !ok {
			t.Fatal("fabric closed early")
		}
		seq := m.Payload.(int)
		if seq != last[m.From]+1 {
			t.Fatalf("sender %d: got seq %d after %d", m.From, seq, last[m.From])
		}
		last[m.From] = seq
	}
}

func TestBroadcast(t *testing.T) {
	f := newTestFabric(t, 4)
	if err := f.Broadcast(1, "update", "x=1", 16); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for _, node := range []int{0, 2, 3} {
		m, ok := f.Recv(node)
		if !ok {
			t.Fatalf("node %d: closed", node)
		}
		if m.From != 1 || m.Kind != "update" {
			t.Errorf("node %d: unexpected message %+v", node, m)
		}
	}
	// The sender must not receive its own broadcast.
	if n := f.Pending(1, 1); n != 0 {
		t.Errorf("self-channel has %d pending messages", n)
	}
}

func TestBroadcastInvalidSender(t *testing.T) {
	f := newTestFabric(t, 2)
	if err := f.Broadcast(7, "k", nil, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestHoldRelease(t *testing.T) {
	f := newTestFabric(t, 2)
	if err := f.Hold(0, 1); err != nil {
		t.Fatalf("Hold: %v", err)
	}
	_ = f.Send(Message{From: 0, To: 1, Kind: "k", Payload: 1})

	got := make(chan Message, 1)
	go func() {
		m, ok := f.Recv(1)
		if ok {
			got <- m
		}
	}()
	select {
	case <-got:
		t.Fatal("message delivered while channel held")
	case <-time.After(20 * time.Millisecond):
	}
	if err := f.Release(0, 1); err != nil {
		t.Fatalf("Release: %v", err)
	}
	select {
	case m := <-got:
		if m.Payload.(int) != 1 {
			t.Errorf("unexpected payload %v", m.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered after release")
	}
}

func TestHoldPreservesFIFO(t *testing.T) {
	f := newTestFabric(t, 2)
	_ = f.Hold(0, 1)
	for i := 0; i < 10; i++ {
		_ = f.Send(Message{From: 0, To: 1, Payload: i})
	}
	_ = f.Release(0, 1)
	for i := 0; i < 10; i++ {
		m, ok := f.Recv(1)
		if !ok || m.Payload.(int) != i {
			t.Fatalf("message %d out of order after hold: %+v ok=%v", i, m, ok)
		}
	}
}

func TestIsolateRejoin(t *testing.T) {
	f := newTestFabric(t, 3)
	if err := f.Isolate(1); err != nil {
		t.Fatalf("Isolate: %v", err)
	}
	_ = f.Send(Message{From: 0, To: 1, Payload: "in"})
	_ = f.Send(Message{From: 1, To: 2, Payload: "out"})
	time.Sleep(10 * time.Millisecond)
	if f.Pending(0, 1) != 1 || f.Pending(1, 2) != 1 {
		t.Fatalf("messages crossed an isolated node: in=%d out=%d",
			f.Pending(0, 1), f.Pending(1, 2))
	}
	if err := f.Rejoin(1); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if _, ok := f.Recv(1); !ok {
		t.Fatal("inbound message lost across isolate/rejoin")
	}
	if _, ok := f.Recv(2); !ok {
		t.Fatal("outbound message lost across isolate/rejoin")
	}
}

func TestStats(t *testing.T) {
	f := newTestFabric(t, 3)
	_ = f.Send(Message{From: 0, To: 1, Kind: "update", Size: 100})
	_ = f.Send(Message{From: 0, To: 2, Kind: "update", Size: 50})
	_ = f.Send(Message{From: 1, To: 0, Kind: "ack", Size: 8})
	s := f.Stats()
	if s.MessagesSent != 3 {
		t.Errorf("MessagesSent = %d, want 3", s.MessagesSent)
	}
	if s.BytesSent != 158 {
		t.Errorf("BytesSent = %d, want 158", s.BytesSent)
	}
	if s.PerNodeSent[0] != 2 || s.PerNodeSent[1] != 1 {
		t.Errorf("PerNodeSent = %v", s.PerNodeSent)
	}
	if s.PerKind["update"] != 2 || s.PerKind["ack"] != 1 {
		t.Errorf("PerKind = %v", s.PerKind)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestLatencyModelDelays(t *testing.T) {
	f, err := New(Config{Nodes: 2, Latency: LatencyModel{Fixed: 30 * time.Millisecond}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	start := time.Now()
	_ = f.Send(Message{From: 0, To: 1})
	if _, ok := f.Recv(1); !ok {
		t.Fatal("closed")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivered in %v, want >= ~30ms", elapsed)
	}
}

func TestLatencyJitterDeterministicSeed(t *testing.T) {
	// Jitter draws from a seeded source; just verify messages still arrive.
	f, err := New(Config{
		Nodes:   2,
		Latency: LatencyModel{Fixed: time.Millisecond, Jitter: 2 * time.Millisecond},
		Seed:    7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	for i := 0; i < 5; i++ {
		_ = f.Send(Message{From: 0, To: 1, Payload: i})
	}
	for i := 0; i < 5; i++ {
		m, ok := f.Recv(1)
		if !ok || m.Payload.(int) != i {
			t.Fatalf("jittered channel broke FIFO: %+v ok=%v", m, ok)
		}
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	f := newTestFabric(t, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := f.Recv(1); !ok {
				return
			}
		}
	}()
	f.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("receiver not unblocked by Close")
	}
}

func TestCloseIdempotent(t *testing.T) {
	f := newTestFabric(t, 2)
	f.Close()
	f.Close()
}

func TestRecvInvalidNode(t *testing.T) {
	f := newTestFabric(t, 2)
	if _, ok := f.Recv(9); ok {
		t.Fatal("Recv on invalid node returned ok")
	}
}

func TestPendingInvalid(t *testing.T) {
	f := newTestFabric(t, 2)
	if f.Pending(-1, 0) != 0 || f.Pending(0, 9) != 0 {
		t.Fatal("Pending on invalid pair should be 0")
	}
}

func TestHoldReleaseInvalid(t *testing.T) {
	f := newTestFabric(t, 2)
	if err := f.Hold(0, 9); err == nil {
		t.Error("Hold invalid pair should error")
	}
	if err := f.Release(9, 0); err == nil {
		t.Error("Release invalid pair should error")
	}
	if err := f.Isolate(9); err == nil {
		t.Error("Isolate invalid node should error")
	}
	if err := f.Rejoin(-1); err == nil {
		t.Error("Rejoin invalid node should error")
	}
}

func TestSetDelayFactorSlowsChannel(t *testing.T) {
	f, err := New(Config{Nodes: 3, Latency: LatencyModel{Fixed: 2 * time.Millisecond}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if err := f.SetDelayFactor(0, 2, 25); err != nil {
		t.Fatalf("SetDelayFactor: %v", err)
	}
	start := time.Now()
	_ = f.Send(Message{From: 0, To: 1})
	_ = f.Send(Message{From: 0, To: 2})
	if _, ok := f.Recv(1); !ok {
		t.Fatal("closed")
	}
	fast := time.Since(start)
	if _, ok := f.Recv(2); !ok {
		t.Fatal("closed")
	}
	slow := time.Since(start)
	if slow < 5*fast {
		t.Errorf("slow channel not slower: fast=%v slow=%v", fast, slow)
	}
}

func TestSetDelayFactorSpeedsChannel(t *testing.T) {
	f, err := New(Config{Nodes: 2, Latency: LatencyModel{Fixed: 20 * time.Millisecond}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if err := f.SetDelayFactor(0, 1, 0.05); err != nil {
		t.Fatalf("SetDelayFactor: %v", err)
	}
	start := time.Now()
	_ = f.Send(Message{From: 0, To: 1})
	if _, ok := f.Recv(1); !ok {
		t.Fatal("closed")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Errorf("sped-up channel took %v", elapsed)
	}
}

func TestSetDelayFactorInvalid(t *testing.T) {
	f := newTestFabric(t, 2)
	if err := f.SetDelayFactor(0, 9, 2); err == nil {
		t.Error("invalid pair must error")
	}
	if err := f.SetDelayFactor(-1, 0, 2); err == nil {
		t.Error("invalid pair must error")
	}
	// Tiny factors clamp rather than dropping to zero-forever.
	if err := f.SetDelayFactor(0, 1, 0); err != nil {
		t.Errorf("clamped factor errored: %v", err)
	}
}

func TestSetDelayFactorPreservesFIFO(t *testing.T) {
	f, err := New(Config{Nodes: 2, Latency: LatencyModel{Fixed: time.Millisecond}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	_ = f.SetDelayFactor(0, 1, 3)
	for i := 0; i < 5; i++ {
		_ = f.Send(Message{From: 0, To: 1, Payload: i})
	}
	for i := 0; i < 5; i++ {
		m, ok := f.Recv(1)
		if !ok || m.Payload.(int) != i {
			t.Fatalf("FIFO broken on slowed channel: %+v ok=%v", m, ok)
		}
	}
}

func BenchmarkFabricSendRecv(b *testing.B) {
	f, err := New(Config{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Send(Message{From: 0, To: 1, Kind: "bench", Payload: i})
		if _, ok := f.Recv(1); !ok {
			b.Fatal("closed")
		}
	}
}

func BenchmarkBroadcast8(b *testing.B) {
	f, err := New(Config{Nodes: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Broadcast(0, "bench", i, 64)
		for node := 1; node < 8; node++ {
			if _, ok := f.Recv(node); !ok {
				b.Fatal("closed")
			}
		}
	}
}
