// Package hist implements the log-bucketed latency histogram the serving
// experiments report tail percentiles from. The bucket layout is the
// classic log-linear ("HDR") scheme: values below 2^subBits land in
// exact unit buckets, and every higher power-of-two octave is split into
// 2^subBits equal sub-buckets, so the relative quantization error is
// bounded by 2^-subBits (≈3.1%) at every magnitude from nanoseconds to
// hours. Bucket counts are plain integers, so histograms merge exactly:
// the merge of two histograms reports the same percentiles as one
// histogram fed the pooled samples, which is what lets a fleet of nodes
// exchange per-node histograms through the DSM (cells.go) and all agree
// on the fleet-wide tail.
//
// Record is allocation-free after New, so per-strand histograms can sit
// on serving hot paths.
package hist

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

const (
	// subBits sets the sub-bucket resolution: 2^subBits sub-buckets per
	// octave, bounding relative error by 2^-subBits.
	subBits  = 5
	subCount = 1 << subBits
	// numBuckets covers every non-negative int64: the top index, for
	// v = 2^63-1, is (62-subBits)*subCount + (2*subCount - 1), which is
	// (64-subBits)*subCount - 1.
	numBuckets = (64 - subBits) * subCount
)

// Histogram is a log-bucketed counter of non-negative int64 samples
// (latencies in nanoseconds, by convention). The zero value is not usable;
// call New.
type Histogram struct {
	counts []int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{counts: make([]int64, numBuckets), min: math.MaxInt64}
}

// bucketIndex maps a non-negative value to its bucket. Values below
// subCount get exact unit buckets; above, the top subBits+1 bits of the
// value select the bucket, so each octave k >= subBits contributes
// subCount buckets of width 2^(k-subBits).
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	k := bits.Len64(u) - 1 // floor(log2 u), >= subBits
	shift := k - subBits
	return shift*subCount + int(u>>uint(shift))
}

// bucketBounds returns the inclusive value range [lo, hi] of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < subCount {
		return int64(i), int64(i)
	}
	shift := i/subCount - 1
	top := int64(i - shift*subCount) // in [subCount, 2*subCount)
	lo = top << uint(shift)
	return lo, lo + (1 << uint(shift)) - 1
}

// bucketMid returns the representative value reported for bucket i: the
// midpoint of its range, so the reported value is within half a bucket
// width of every sample that landed in it.
func bucketMid(i int) int64 {
	lo, hi := bucketBounds(i)
	return lo + (hi-lo)/2
}

// Record adds one sample. Negative samples count as zero (a clock step
// between two processes can produce one; it carries no information beyond
// "fast"). Record never allocates.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds one sample given as a duration.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the sum of all recorded samples (clamped ones as zero).
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, or 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the value at quantile q in [0, 1]: the representative
// (bucket midpoint) of the bucket holding the ceil(q*Count)-th smallest
// sample. Out-of-range q values are clamped; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(numBuckets - 1)
}

// Clone returns an independent deep copy of h. Histograms are not safe for
// concurrent mutation; the snapshot-then-merge pattern — each strand
// records into a private histogram, a collector Clones or Merges them at a
// quiescent point — is how they cross goroutines.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		counts: append([]int64(nil), h.counts...),
		total:  h.total,
		sum:    h.sum,
		min:    h.min,
		max:    h.max,
	}
	return c
}

// Merge adds o's samples into h. Bucket counts add, so the result reports
// exactly the percentiles of the pooled sample set (merge is associative
// and commutative).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Summary is the fixed percentile report the serving experiments emit.
type Summary struct {
	Count int64
	P50   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// Summary reports the standard serving percentiles, reading samples as
// nanoseconds.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.total,
		P50:   time.Duration(h.Quantile(0.50)),
		P99:   time.Duration(h.Quantile(0.99)),
		P999:  time.Duration(h.Quantile(0.999)),
		Max:   time.Duration(h.max),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v max=%v",
		s.Count, s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.P999.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
