package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile returns the ceil(q*n)-th smallest sample, the definition
// Quantile buckets.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantileWithinBucketError is the histogram property test: for random
// sample sets spanning nanoseconds to minutes, every reported percentile
// must lie in the bucket of the exact percentile, i.e. within half a
// bucket width (≤ 2^-subBits relative error) of it.
func TestQuantileWithinBucketError(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(5000)
		samples := make([]int64, n)
		h := New()
		for i := range samples {
			// Log-uniform magnitudes so every octave is exercised.
			v := int64(math.Exp(r.Float64() * 25)) // up to ~7e10 ns
			samples[i] = v
			h.Record(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			exact := exactQuantile(samples, q)
			got := h.Quantile(q)
			lo, hi := bucketBounds(bucketIndex(exact))
			if got < lo || got > hi {
				t.Fatalf("seed %d q=%v: reported %d outside exact value %d's bucket [%d,%d]",
					seed, q, got, exact, lo, hi)
			}
			width := hi - lo + 1
			if d := got - exact; d > width/2+1 || d < -(width/2+1) {
				t.Fatalf("seed %d q=%v: reported %d is %d away from exact %d, bucket width %d",
					seed, q, got, d, exact, width)
			}
		}
		if h.Count() != int64(n) {
			t.Fatalf("count %d, want %d", h.Count(), n)
		}
		if h.Min() != samples[0] || h.Max() != samples[n-1] {
			t.Fatalf("min/max %d/%d, want %d/%d", h.Min(), h.Max(), samples[0], samples[n-1])
		}
	}
}

func TestBucketIndexBounds(t *testing.T) {
	for _, v := range []int64{0, 1, subCount - 1, subCount, subCount + 1,
		1000, 1 << 20, math.MaxInt64 - 1, math.MaxInt64} {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", v, i, numBuckets)
		}
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its own bucket %d's bounds [%d,%d]", v, i, lo, hi)
		}
	}
	// Indexes are monotone in the value.
	prev := -1
	for v := int64(0); v < 1<<14; v++ {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

func randomHist(seed int64, n int) *Histogram {
	r := rand.New(rand.NewSource(seed))
	h := New()
	for i := 0; i < n; i++ {
		h.Record(int64(math.Exp(r.Float64() * 22)))
	}
	return h
}

func histsEqual(a, b *Histogram) bool {
	if a.total != b.total || a.sum != b.sum || a.Min() != b.Min() || a.Max() != b.Max() {
		return false
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			return false
		}
	}
	return true
}

// TestMergeAssociativeCommutative checks the merge laws the fleet-wide
// exchange relies on: any merge order of per-node histograms yields the
// same histogram, and the merge equals the histogram of the pooled
// samples.
func TestMergeAssociativeCommutative(t *testing.T) {
	a, b, c := randomHist(1, 500), randomHist(2, 800), randomHist(3, 50)

	ab := New()
	ab.Merge(a)
	ab.Merge(b)
	ab.Merge(c)

	cb := New()
	cb.Merge(c)
	cb.Merge(b)
	cb.Merge(a)

	bc := New()
	bc.Merge(b)
	bc.Merge(c)
	acc := New()
	acc.Merge(a)
	acc.Merge(bc)

	if !histsEqual(ab, cb) || !histsEqual(ab, acc) {
		t.Fatal("merge is not order-independent")
	}

	// Pooled: one histogram fed all three sample streams directly.
	pooled := New()
	for seed, n := range map[int64]int{1: 500, 2: 800, 3: 50} {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			pooled.Record(int64(math.Exp(r.Float64() * 22)))
		}
	}
	if !histsEqual(ab, pooled) {
		t.Fatal("merged histogram differs from pooled-sample histogram")
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if ab.Quantile(q) != pooled.Quantile(q) {
			t.Fatalf("q=%v: merged %d != pooled %d", q, ab.Quantile(q), pooled.Quantile(q))
		}
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	h := New()
	if n := testing.AllocsPerRun(1000, func() { h.Record(123456) }); n != 0 {
		t.Fatalf("Record allocates %v times per call", n)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, h := range []*Histogram{New(), randomHist(7, 1000)} {
		b, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got := New()
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !histsEqual(h, got) {
			t.Fatal("binary round trip changed the histogram")
		}
	}
	if err := New().UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated input did not error")
	}
}

func TestCellsRoundTripAndAccumulate(t *testing.T) {
	a, b := randomHist(11, 700), randomHist(12, 300)

	merged := New()
	if err := merged.AddCells(a.Cells()); err != nil {
		t.Fatalf("AddCells(a): %v", err)
	}
	if err := merged.AddCells(b.Cells()); err != nil {
		t.Fatalf("AddCells(b): %v", err)
	}

	want := New()
	want.Merge(a)
	want.Merge(b)
	if !histsEqual(merged, want) {
		t.Fatal("cell-merged histogram differs from direct merge")
	}

	empty := New()
	viaCells := New()
	if err := viaCells.AddCells(empty.Cells()); err != nil {
		t.Fatalf("AddCells(empty): %v", err)
	}
	if viaCells.Count() != 0 || viaCells.Min() != 0 || viaCells.Max() != 0 {
		t.Fatal("empty histogram's cells perturbed the receiver")
	}
	if err := New().AddCells(nil); err == nil {
		t.Fatal("missing header cells did not error")
	}
}

func TestQuantileEmptyAndClamped(t *testing.T) {
	h := New()
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Record(-5) // clamps to zero
	if h.Quantile(-1) != 0 || h.Quantile(2) != 0 {
		t.Fatal("clamped quantiles of the zero sample != 0")
	}
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative sample did not clamp to zero")
	}
}

// TestCloneIndependentAndMergeDeterministic pins the Clone contract (deep
// copy: mutating the clone or the original never shows through) and merge
// determinism over clones: merging per-strand histograms in any order into
// any number of intermediate clones reports identical summaries.
func TestCloneIndependentAndMergeDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	strands := make([]*Histogram, 4)
	for i := range strands {
		strands[i] = New()
		for k := 0; k < 2000; k++ {
			strands[i].Record(int64(math.Exp(r.Float64() * 22)))
		}
	}

	c := strands[0].Clone()
	if c.Count() != strands[0].Count() || c.Quantile(0.99) != strands[0].Quantile(0.99) {
		t.Fatalf("clone differs from original: %v vs %v", c.Summary(), strands[0].Summary())
	}
	c.Record(1 << 40)
	if strands[0].Max() == c.Max() {
		t.Fatal("clone aliases the original's buckets")
	}
	before := strands[0].Summary()
	strands[0].Record(1)
	if got := c.Count(); got != before.Count+1 {
		// c was cloned before the extra Record(1<<40) above plus has its own
		// sample; the original's later Record must not show through.
		t.Fatalf("original mutation visible in clone: count %d", got)
	}

	// Merge determinism: forward order, reverse order, and pairwise-tree
	// merges over clones all agree exactly.
	forward := New()
	for _, s := range strands {
		forward.Merge(s.Clone())
	}
	reverse := New()
	for i := len(strands) - 1; i >= 0; i-- {
		reverse.Merge(strands[i].Clone())
	}
	left, right := New(), New()
	left.Merge(strands[0].Clone())
	left.Merge(strands[1].Clone())
	right.Merge(strands[2].Clone())
	right.Merge(strands[3].Clone())
	tree := left.Clone()
	tree.Merge(right)

	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		a, b, c := forward.Quantile(q), reverse.Quantile(q), tree.Quantile(q)
		if a != b || a != c {
			t.Fatalf("q=%v: merge order changed the answer: %d %d %d", q, a, b, c)
		}
	}
	if forward.Count() != reverse.Count() || forward.Count() != tree.Count() ||
		forward.Sum() != tree.Sum() || forward.Min() != tree.Min() || forward.Max() != tree.Max() {
		t.Fatalf("merge aggregates diverge: %v %v %v",
			forward.Summary(), reverse.Summary(), tree.Summary())
	}
}
