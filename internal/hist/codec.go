package hist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The wire layout is sparse: a fixed header (sample count, sum, min, max)
// followed by one (bucket index, count) pair per nonzero bucket. Serving
// histograms are heavily concentrated, so the sparse form is a few hundred
// bytes where the dense array would be 15 KB.

// MarshalBinary encodes the histogram in the sparse wire form.
func (h *Histogram) MarshalBinary() ([]byte, error) {
	nz := 0
	for _, c := range h.counts {
		if c != 0 {
			nz++
		}
	}
	return h.AppendBinary(make([]byte, 0, 8*4+4+nz*12)), nil
}

// AppendBinary appends the sparse wire form to dst and returns the extended
// slice — the alloc-free variant for callers that reuse a pooled buffer
// (transport.GetBuf) across encodes.
func (h *Histogram) AppendBinary(dst []byte) []byte {
	nz := 0
	for _, c := range h.counts {
		if c != 0 {
			nz++
		}
	}
	buf := dst
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.total))
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.sum))
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.min))
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.max))
	buf = binary.BigEndian.AppendUint32(buf, uint32(nz))
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(i))
		buf = binary.BigEndian.AppendUint64(buf, uint64(c))
	}
	return buf
}

// UnmarshalBinary decodes a histogram previously encoded with
// MarshalBinary, replacing h's contents.
func (h *Histogram) UnmarshalBinary(data []byte) error {
	if len(data) < 8*4+4 {
		return fmt.Errorf("hist: truncated header (%d bytes)", len(data))
	}
	if h.counts == nil {
		h.counts = make([]int64, numBuckets)
	} else {
		for i := range h.counts {
			h.counts[i] = 0
		}
	}
	h.total = int64(binary.BigEndian.Uint64(data[0:]))
	h.sum = int64(binary.BigEndian.Uint64(data[8:]))
	h.min = int64(binary.BigEndian.Uint64(data[16:]))
	h.max = int64(binary.BigEndian.Uint64(data[24:]))
	nz := int(binary.BigEndian.Uint32(data[32:]))
	data = data[36:]
	if len(data) != nz*12 {
		return fmt.Errorf("hist: %d pairs but %d trailing bytes", nz, len(data))
	}
	for p := 0; p < nz; p++ {
		i := int(binary.BigEndian.Uint32(data[p*12:]))
		c := int64(binary.BigEndian.Uint64(data[p*12+4:]))
		if i < 0 || i >= numBuckets {
			return fmt.Errorf("hist: bucket index %d out of range", i)
		}
		if c < 0 {
			return fmt.Errorf("hist: negative count %d for bucket %d", c, i)
		}
		h.counts[i] = c
	}
	return nil
}

// DSM cell packing: the fleet-metrics exchange stores shared memory cells
// of int64, so a histogram travels as a short vector of packed cells, one
// per nonzero bucket: the bucket index in the top 16 bits and the count in
// the low 47 (counts beyond 2^47-1 spill across repeated cells with the
// same index; decoders add). Three extra header cells carry sum, min, and
// max, which do not reconstruct from bucket counts.

const (
	cellCountBits = 47
	cellCountMax  = (int64(1) << cellCountBits) - 1
)

// Cells encodes the histogram as packed int64 cells for exchange through
// shared-memory locations: cells[0..2] are sum, min (MaxInt64 when empty),
// and max, followed by one packed (index, count) cell per nonzero bucket.
func (h *Histogram) Cells() []int64 {
	return h.AppendCells(make([]int64, 0, 3+16))
}

// AppendCells appends the packed-cell encoding to dst and returns the
// extended slice — the alloc-free variant for callers that reuse a scratch
// slice across snapshots (the fleet-metrics publisher re-encodes every
// interval).
func (h *Histogram) AppendCells(dst []int64) []int64 {
	cells := append(dst, h.sum, h.min, h.max)
	for i, c := range h.counts {
		for c > 0 {
			chunk := c
			if chunk > cellCountMax {
				chunk = cellCountMax
			}
			cells = append(cells, int64(i)<<cellCountBits|chunk)
			c -= chunk
		}
	}
	return cells
}

// AddCells merges cells produced by Cells into h: bucket counts (and the
// derived total) accumulate, so adding every node's cells into one
// histogram yields the exact pooled-sample histogram.
func (h *Histogram) AddCells(cells []int64) error {
	if len(cells) < 3 {
		return fmt.Errorf("hist: %d cells, want at least the 3-cell header", len(cells))
	}
	sum, mn, mx := cells[0], cells[1], cells[2]
	var added int64
	for _, cell := range cells[3:] {
		i := int(cell >> cellCountBits)
		c := cell & cellCountMax
		if i < 0 || i >= numBuckets {
			return fmt.Errorf("hist: packed bucket index %d out of range", i)
		}
		h.counts[i] += c
		added += c
	}
	h.total += added
	h.sum += sum
	if added > 0 {
		if mn < h.min {
			h.min = mn
		}
		if mx > h.max {
			h.max = mx
		}
	} else if mn != math.MaxInt64 && mn < h.min {
		h.min = mn
	}
	return nil
}
