package history

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the analyzed history as a Graphviz digraph for
// debugging: one node per operation (clustered by process, labeled in the
// paper's notation) and one edge per pair of the causality relation's
// transitive reduction, colored by origin — program order black, reads-from
// blue, synchronization orders red. Feed the output to `dot -Tsvg`.
func (a *Analysis) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph history {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=box, fontsize=10];")

	// Cluster operations per process in program order.
	byProc := make(map[int][]Op)
	for _, op := range a.H.Ops {
		byProc[op.Proc] = append(byProc[op.Proc], op)
	}
	procs := make([]int, 0, len(byProc))
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		fmt.Fprintf(w, "  subgraph cluster_p%d {\n", p)
		fmt.Fprintf(w, "    label=\"p%d\";\n", p)
		ops := byProc[p]
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].Thread != ops[j].Thread {
				return ops[i].Thread < ops[j].Thread
			}
			return ops[i].Seq < ops[j].Seq
		})
		for _, op := range ops {
			fmt.Fprintf(w, "    n%d [label=%q];\n", op.ID, op.String())
		}
		fmt.Fprintln(w, "  }")
	}

	// Edge set: transitive reduction of the causality relation, colored by
	// which component relation explains the pair.
	reduced := a.Causality.TransitiveReduce()
	n := len(a.H.Ops)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !reduced.Has(i, j) {
				continue
			}
			color := "black" // program order
			switch {
			case a.Sync.Has(i, j) && !a.PO.Has(i, j):
				color = "red"
			case a.RF.Has(i, j):
				color = "blue"
			}
			fmt.Fprintf(w, "  n%d -> n%d [color=%s];\n", i, j, color)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
