// Package history implements the formal system model of Section 3 of the
// paper: operations, local histories as partial orders, the reads-from
// relation, the synchronization orders |->lock, |->bar, and |->await, the
// causality relation ~> (the transitive closure of their union with program
// order), and the per-process observable relations ~>i,C (causal, Def. 2)
// and ~>i,P (PRAM, Def. 3).
//
// The package is the ground truth against which the runtime (internal/dsm,
// internal/core) is tested: executions are recorded as histories and checked
// with internal/check.
package history

import (
	"errors"
	"fmt"
	"sort"
)

// Well-formedness errors.
var (
	ErrUnmatchedUnlock  = errors.New("history: unlock without preceding matching lock")
	ErrBarrierUnordered = errors.New("history: barrier not totally ordered with process operations")
	ErrDuplicateValue   = errors.New("history: duplicate write value for location")
	ErrBadLockEpoch     = errors.New("history: malformed lock epoch")
	ErrCyclicCausality  = errors.New("history: causality relation is cyclic")
	ErrBadOp            = errors.New("history: malformed operation")
)

// History is a complete, well-formed history of a program execution: the set
// of operations of all processes together with the orders of Section 3.
// Build one with a Builder or record one from the runtime, then call Analyze.
type History struct {
	// NumProcs is the number of processes p_0 .. p_{NumProcs-1}.
	NumProcs int
	// Ops holds every operation; Op.ID is its index here.
	Ops []Op
	// extra holds explicit program-order edges added with AddEdge, used to
	// express fork/join structure between threads of one process.
	extra [][2]int
}

// New returns an empty history over n processes.
func New(n int) *History {
	return &History{NumProcs: n}
}

// Append adds op to the history, assigning its ID and its sequence number
// within its (Proc, Thread) strand, and returns the ID.
func (h *History) Append(op Op) int {
	op.ID = len(h.Ops)
	op.Seq = h.strandLen(op.Proc, op.Thread)
	h.Ops = append(h.Ops, op)
	return op.ID
}

func (h *History) strandLen(proc, thread int) int {
	n := 0
	for _, o := range h.Ops {
		if o.Proc == proc && o.Thread == thread {
			n++
		}
	}
	return n
}

// AddEdge records an explicit program-order edge between two operations of
// the same process (for fork/join between threads, mirroring the paper's
// partial-order local histories). It is an error to relate operations of
// different processes this way.
func (h *History) AddEdge(from, to int) error {
	if from < 0 || from >= len(h.Ops) || to < 0 || to >= len(h.Ops) {
		return fmt.Errorf("edge %d->%d out of range: %w", from, to, ErrBadOp)
	}
	if h.Ops[from].Proc != h.Ops[to].Proc {
		return fmt.Errorf("edge %d->%d crosses processes: %w", from, to, ErrBadOp)
	}
	h.extra = append(h.extra, [2]int{from, to})
	return nil
}

// Analysis holds the derived relations of a history. All relations range
// over operation IDs and, unless noted otherwise, are transitively closed.
type Analysis struct {
	H *History
	// PO is the program order ->: the union of the per-strand sequence
	// orders and explicit edges, transitively closed.
	PO *Relation
	// RF is the reads-from relation |. : w(x)v |. r(x)v (not closed; it
	// relates write/await and write/read pairs directly). Reads of the
	// initial value (no matching write) have no RF predecessor.
	RF *Relation
	// LockOrder is |->lock over all lock objects, transitively closed.
	LockOrder *Relation
	// BarrierOrder is |->bar, transitively closed.
	BarrierOrder *Relation
	// AwaitOrder is |->await: matching write |-> await pairs.
	AwaitOrder *Relation
	// Sync is the union of the three synchronization orders.
	Sync *Relation
	// Causality is ~>: the transitive closure of PO, RF, and Sync.
	Causality *Relation

	// pramOrder caches ~>i,P per process; causalView caches ~>i,C;
	// slowOrder caches ~>i,S.
	pramOrder  map[int]*Relation
	causalView map[int]*Relation
	slowOrder  map[int]*Relation
}

// Analyze validates well-formedness and computes the derived relations. It
// returns an error if the history violates the well-formedness conditions of
// Section 3 or has a cyclic causality relation.
func (h *History) Analyze() (*Analysis, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	n := len(h.Ops)
	a := &Analysis{
		H:          h,
		pramOrder:  make(map[int]*Relation),
		causalView: make(map[int]*Relation),
		slowOrder:  make(map[int]*Relation),
	}

	a.PO = h.programOrder()
	a.PO.TransitiveClose()

	rf, err := h.readsFrom()
	if err != nil {
		return nil, err
	}
	a.RF = rf

	a.LockOrder = h.lockOrder()
	a.LockOrder.TransitiveClose()
	a.BarrierOrder = h.barrierOrder(a.PO)
	a.BarrierOrder.TransitiveClose()
	a.AwaitOrder = h.awaitOrder(rf)

	a.Sync = NewRelation(n)
	a.Sync.Union(a.LockOrder)
	a.Sync.Union(a.BarrierOrder)
	a.Sync.Union(a.AwaitOrder)

	a.Causality = NewRelation(n)
	a.Causality.Union(a.PO)
	a.Causality.Union(a.RF)
	a.Causality.Union(a.Sync)
	a.Causality.TransitiveClose()
	if a.Causality.HasCycle() {
		return nil, ErrCyclicCausality
	}
	return a, nil
}

// Validate checks the well-formedness conditions of Section 3 that are
// decidable on a completed history:
//
//  1. each unlock has a preceding matching lock by the same process on the
//     same object;
//  2. each barrier operation is totally ordered with respect to all
//     operations of its process;
//  3. lock epochs are well formed (a write epoch has exactly one wl/wu pair;
//     a read epoch has only rl/ru operations with matched pairs);
//  4. all writes to a location carry distinct values (the paper's
//     unique-values assumption, which makes reads-from well defined).
func (h *History) Validate() error {
	if err := h.validateLocks(); err != nil {
		return err
	}
	if err := h.validateBarriers(); err != nil {
		return err
	}
	return h.validateUniqueWrites()
}

func (h *History) validateLocks() error {
	// Per (proc, lock): scan in strand order, tracking held mode. A process
	// may be multithreaded; require lock discipline per strand.
	type strand struct{ proc, thread int }
	held := make(map[strand]map[string]OpKind) // lock -> RLock or WLock
	ordered := h.strandOrderedOps()
	for _, id := range ordered {
		op := h.Ops[id]
		if !op.Kind.IsLock() {
			continue
		}
		key := strand{op.Proc, op.Thread}
		if held[key] == nil {
			held[key] = make(map[string]OpKind)
		}
		m := held[key]
		switch op.Kind {
		case RLock, WLock:
			if _, ok := m[op.Lock]; ok {
				return fmt.Errorf("%s acquires %q while held: %w", op, op.Lock, ErrBadLockEpoch)
			}
			m[op.Lock] = op.Kind
		case RUnlock:
			if m[op.Lock] != RLock {
				return fmt.Errorf("%s: %w", op, ErrUnmatchedUnlock)
			}
			delete(m, op.Lock)
		case WUnlock:
			if m[op.Lock] != WLock {
				return fmt.Errorf("%s: %w", op, ErrUnmatchedUnlock)
			}
			delete(m, op.Lock)
		}
	}
	// Per (lock, epoch): either exactly one wl/wu pair, or only rl/ru.
	type epochKey struct {
		lock  string
		epoch int
	}
	epochs := make(map[epochKey][]Op)
	for _, op := range h.Ops {
		if op.Kind.IsLock() {
			k := epochKey{op.Lock, op.LockEpoch}
			epochs[k] = append(epochs[k], op)
		}
	}
	for k, ops := range epochs {
		var wl, wu, rl, ru int
		for _, op := range ops {
			switch op.Kind {
			case WLock:
				wl++
			case WUnlock:
				wu++
			case RLock:
				rl++
			case RUnlock:
				ru++
			}
		}
		if wl > 0 || wu > 0 {
			if wl != 1 || wu != 1 || rl != 0 || ru != 0 {
				return fmt.Errorf("lock %q epoch %d mixes write and read holds: %w",
					k.lock, k.epoch, ErrBadLockEpoch)
			}
		} else if rl != ru {
			return fmt.Errorf("lock %q epoch %d has %d rl but %d ru: %w",
				k.lock, k.epoch, rl, ru, ErrBadLockEpoch)
		}
	}
	return nil
}

func (h *History) validateBarriers() error {
	// A barrier op must be ordered with every other op of its process: in a
	// multithreaded process that requires explicit edges. With a single
	// thread per process the strand order already totalizes.
	po := h.programOrder()
	po.TransitiveClose()
	for _, b := range h.Ops {
		if b.Kind != Barrier {
			continue
		}
		for _, o := range h.Ops {
			if o.Proc != b.Proc || o.ID == b.ID {
				continue
			}
			if !po.Has(b.ID, o.ID) && !po.Has(o.ID, b.ID) {
				return fmt.Errorf("%s unordered with %s: %w", b, o, ErrBarrierUnordered)
			}
		}
	}
	return nil
}

func (h *History) validateUniqueWrites() error {
	type wkey struct {
		loc string
		val int64
	}
	seen := make(map[wkey]int)
	for _, op := range h.Ops {
		if op.Kind != Write {
			continue
		}
		k := wkey{op.Loc, op.Value}
		if prev, ok := seen[k]; ok {
			return fmt.Errorf("%s duplicates %s: %w", op, h.Ops[prev], ErrDuplicateValue)
		}
		seen[k] = op.ID
	}
	return nil
}

// strandOrderedOps returns op IDs sorted by (proc, thread, seq).
func (h *History) strandOrderedOps() []int {
	ids := make([]int, len(h.Ops))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		oa, ob := h.Ops[ids[a]], h.Ops[ids[b]]
		if oa.Proc != ob.Proc {
			return oa.Proc < ob.Proc
		}
		if oa.Thread != ob.Thread {
			return oa.Thread < ob.Thread
		}
		return oa.Seq < ob.Seq
	})
	return ids
}

// programOrder builds the direct program-order edges: consecutive operations
// of each (proc, thread) strand plus the explicit edges.
func (h *History) programOrder() *Relation {
	r := NewRelation(len(h.Ops))
	type strand struct{ proc, thread int }
	last := make(map[strand]int)
	for _, id := range h.strandOrderedOps() {
		op := h.Ops[id]
		key := strand{op.Proc, op.Thread}
		if prev, ok := last[key]; ok {
			r.Add(prev, id)
		}
		last[key] = id
	}
	for _, e := range h.extra {
		r.Add(e[0], e[1])
	}
	return r
}

// readsFrom matches each read and await to the write of the same location
// and value. A read with no matching write reads the initial value and has
// no reads-from predecessor.
func (h *History) readsFrom() (*Relation, error) {
	r := NewRelation(len(h.Ops))
	type wkey struct {
		loc string
		val int64
	}
	writes := make(map[wkey]int)
	for _, op := range h.Ops {
		if op.Kind == Write {
			writes[wkey{op.Loc, op.Value}] = op.ID
		}
	}
	for _, op := range h.Ops {
		if !op.readsMemory() {
			continue
		}
		if w, ok := writes[wkey{op.Loc, op.Value}]; ok {
			r.Add(w, op.ID)
		}
	}
	return r, nil
}

// lockOrder builds |->lock (Section 3.1.1) from the recorded lock epochs:
// operations in a smaller epoch precede operations in a larger epoch of the
// same lock, and within a write epoch wl precedes wu. rl/ru pairs within one
// read epoch are left unordered by |->lock (program order already orders
// each pair).
func (h *History) lockOrder() *Relation {
	r := NewRelation(len(h.Ops))
	byLock := make(map[string][]Op)
	for _, op := range h.Ops {
		if op.Kind.IsLock() {
			byLock[op.Lock] = append(byLock[op.Lock], op)
		}
	}
	for _, ops := range byLock {
		for _, a := range ops {
			for _, b := range ops {
				if a.ID == b.ID {
					continue
				}
				switch {
				case a.LockEpoch < b.LockEpoch:
					r.Add(a.ID, b.ID)
				case a.LockEpoch == b.LockEpoch && a.Kind == WLock && b.Kind == WUnlock:
					r.Add(a.ID, b.ID)
				}
			}
		}
	}
	return r
}

// barrierOrder builds |->bar (Section 3.1.2): for any operation o of process
// p_j and any process p_i, if o ->j b^k_j then o |-> b^k_i, and if
// b^k_j ->j o then b^k_i |-> o. po must be the transitively closed program
// order.
func (h *History) barrierOrder(po *Relation) *Relation {
	r := NewRelation(len(h.Ops))
	// barrier instances: (group, barrierID) -> per-process barrier op. A
	// subset barrier orders only its members.
	type instanceKey struct {
		group string
		id    int
	}
	instances := make(map[instanceKey][]int)
	for _, op := range h.Ops {
		if op.Kind == Barrier {
			k := instanceKey{op.BarrierGroup, op.BarrierID}
			instances[k] = append(instances[k], op.ID)
		}
	}
	for _, o := range h.Ops {
		for _, members := range instances {
			var own int = -1
			for _, bid := range members {
				if h.Ops[bid].Proc == o.Proc {
					own = bid
					break
				}
			}
			if own < 0 || own == o.ID {
				continue
			}
			if po.Has(o.ID, own) {
				for _, bid := range members {
					r.Add(o.ID, bid)
				}
			}
			if po.Has(own, o.ID) {
				for _, bid := range members {
					r.Add(bid, o.ID)
				}
			}
		}
	}
	return r
}

// awaitOrder builds |->await (Section 3.1.3): for each await a_i(x)v the
// matching write w_j(x)v precedes it. rf already holds exactly these edges
// for awaits; extract them.
func (h *History) awaitOrder(rf *Relation) *Relation {
	r := NewRelation(len(h.Ops))
	for _, op := range h.Ops {
		if op.Kind != Await {
			continue
		}
		for w := 0; w < len(h.Ops); w++ {
			if rf.Has(w, op.ID) {
				r.Add(w, op.ID)
			}
		}
	}
	return r
}

// CausalView returns ~>i,C for process proc: the causality relation
// restricted to the operations of proc plus all write and synchronization
// operations of other processes (the operations that may affect proc).
func (a *Analysis) CausalView(proc int) *Relation {
	if r, ok := a.causalView[proc]; ok {
		return r
	}
	keep := func(id int) bool {
		op := a.H.Ops[id]
		return op.Proc == proc || op.Kind == Write || op.Kind.IsSync()
	}
	r := a.Causality.Restrict(keep)
	a.causalView[proc] = r
	return r
}

// GroupOrder returns the generalized per-process relation ~>i,G of the
// paper's Section 3.2 remark: "the definition can be easily generalized to
// maintain causality across an arbitrary group of processes; PRAM reads and
// causal reads form the two end points of the spectrum."
//
// The construction follows Definition 3 with the group in place of the
// single process: synchronization edges (transitively reduced) and
// reads-from edges are kept when either endpoint belongs to the group, the
// union with program order is transitively closed, and the result is
// projected onto all operations except reads of processes outside the group.
// GroupOrder(proc, {proc}) coincides with PRAMOrder(proc); GroupOrder over
// all processes coincides with CausalView(proc).
func (a *Analysis) GroupOrder(proc int, group []int) *Relation {
	inGroup := make(map[int]bool, len(group)+1)
	inGroup[proc] = true
	for _, g := range group {
		inGroup[g] = true
	}
	touches := func(id int) bool { return inGroup[a.H.Ops[id].Proc] }

	reduced := NewRelation(len(a.H.Ops))
	reduced.Union(a.LockOrder.TransitiveReduce())
	reduced.Union(a.BarrierOrder.TransitiveReduce())
	reduced.Union(a.AwaitOrder.TransitiveReduce())

	syncG := reduced.RestrictEndpoint(touches)
	rfG := a.RF.RestrictEndpoint(touches)

	rel := NewRelation(len(a.H.Ops))
	rel.Union(a.PO)
	rel.Union(syncG)
	rel.Union(rfG)
	rel.TransitiveClose()

	keep := func(id int) bool {
		op := a.H.Ops[id]
		return op.Kind != Read || inGroup[op.Proc]
	}
	return rel.Restrict(keep)
}

// PRAMOrder returns ~>i,P for process proc per Definition 3:
//
//  1. take the transitive reduction of each synchronization order and union
//     them into |->PRAM;
//  2. keep only |->PRAM edges and reads-from edges with an endpoint at proc;
//  3. transitively close their union with program order, and project onto
//     all operations except reads of other processes.
func (a *Analysis) PRAMOrder(proc int) *Relation {
	if r, ok := a.pramOrder[proc]; ok {
		return r
	}
	touches := func(id int) bool { return a.H.Ops[id].Proc == proc }

	pram := NewRelation(len(a.H.Ops))
	pram.Union(a.LockOrder.TransitiveReduce())
	pram.Union(a.BarrierOrder.TransitiveReduce())
	pram.Union(a.AwaitOrder.TransitiveReduce())

	syncI := pram.RestrictEndpoint(touches)
	rfI := a.RF.RestrictEndpoint(touches)

	rel := NewRelation(len(a.H.Ops))
	rel.Union(a.PO)
	rel.Union(syncI)
	rel.Union(rfI)
	rel.TransitiveClose()

	keep := func(id int) bool {
		op := a.H.Ops[id]
		return op.Kind != Read || op.Proc == proc
	}
	r := rel.Restrict(keep)
	a.pramOrder[proc] = r
	return r
}

// SlowOrder returns ~>i,S for process proc: the observable relation of the
// Slow label, the lattice point below PRAM (Hutto & Ahamad's slow memory).
// The construction mirrors PRAMOrder with one relaxation: instead of the full
// program order of every process, the base order keeps
//
//   - all program-order edges of proc itself, and
//   - for every other process, only the program-order edges between memory
//     operations on the same location (the per-writer per-location FIFO).
//
// Synchronization edges (transitively reduced) and reads-from edges with an
// endpoint at proc are retained exactly as in Definition 3, so barriers and
// lock grant order still fence across locations; what Slow gives up is a
// remote writer's cross-location program order — w_j(x)v -> w_j(y)u no longer
// forces proc to observe x's new value before y's. SlowOrder(proc) is a
// subset of PRAMOrder(proc), so every PRAM-consistent history is
// Slow-consistent (the lattice inclusion the litmus hierarchy test pins).
func (a *Analysis) SlowOrder(proc int) *Relation {
	if r, ok := a.slowOrder[proc]; ok {
		return r
	}
	touches := func(id int) bool { return a.H.Ops[id].Proc == proc }

	reduced := NewRelation(len(a.H.Ops))
	reduced.Union(a.LockOrder.TransitiveReduce())
	reduced.Union(a.BarrierOrder.TransitiveReduce())
	reduced.Union(a.AwaitOrder.TransitiveReduce())

	syncI := reduced.RestrictEndpoint(touches)
	rfI := a.RF.RestrictEndpoint(touches)

	// The per-process slow base order: proc's own program order in full,
	// other processes' program order only between same-location memory ops.
	// a.PO is transitively closed, so the same-location restriction keeps
	// w_j(x)1 -> w_j(x)2 even with unrelated operations interleaved.
	slowPO := NewRelation(len(a.H.Ops))
	for u := 0; u < len(a.H.Ops); u++ {
		for v := 0; v < len(a.H.Ops); v++ {
			if !a.PO.Has(u, v) {
				continue
			}
			ou, ov := a.H.Ops[u], a.H.Ops[v]
			if ou.Proc == proc {
				slowPO.Add(u, v)
				continue
			}
			if ou.Loc != "" && ou.Loc == ov.Loc {
				slowPO.Add(u, v)
			}
		}
	}

	rel := NewRelation(len(a.H.Ops))
	rel.Union(slowPO)
	rel.Union(syncI)
	rel.Union(rfI)
	rel.TransitiveClose()

	keep := func(id int) bool {
		op := a.H.Ops[id]
		return op.Kind != Read || op.Proc == proc
	}
	r := rel.Restrict(keep)
	a.slowOrder[proc] = r
	return r
}
