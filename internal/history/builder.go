package history

import "sync"

// Builder constructs histories incrementally. It is safe for concurrent use,
// so the runtime's processes can record their operations directly into one
// shared builder. Sequence numbers within each (proc, thread) strand are
// assigned in call order.
type Builder struct {
	mu      sync.Mutex
	h       *History
	strands map[[2]int]int
	// lastOp remembers the most recent op ID of each strand, for fork/join
	// edge bookkeeping.
	lastOp map[[2]int]int
	// pendingFork[(proc,thread)] is an op ID that must program-order
	// precede the strand's next op (the fork point).
	pendingFork map[[2]int]int
	// pendingJoin[(proc,thread)] are op IDs that must program-order
	// precede the strand's next op (the joined threads' last ops).
	pendingJoin map[[2]int][]int
	// epochs assigns lock epochs automatically for histories built purely
	// through the Lock/Unlock convenience methods (tests). The runtime
	// records real grant epochs and uses AppendOp instead.
	epochs map[string]int
}

// NewBuilder returns a builder for a history over n processes.
func NewBuilder(n int) *Builder {
	return &Builder{
		h:           New(n),
		strands:     make(map[[2]int]int),
		lastOp:      make(map[[2]int]int),
		pendingFork: make(map[[2]int]int),
		pendingJoin: make(map[[2]int][]int),
		epochs:      make(map[string]int),
	}
}

// AppendOp adds a fully specified operation (Seq and ID are assigned by the
// builder) and returns its ID. Pending fork/join edges registered for the
// operation's strand are materialized as explicit program-order edges.
func (b *Builder) AppendOp(op Op) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := [2]int{op.Proc, op.Thread}
	op.Seq = b.strands[key]
	b.strands[key]++
	op.ID = len(b.h.Ops)
	b.h.Ops = append(b.h.Ops, op)
	b.lastOp[key] = op.ID
	if from, ok := b.pendingFork[key]; ok {
		delete(b.pendingFork, key)
		_ = b.h.AddEdge(from, op.ID)
	}
	if joins := b.pendingJoin[key]; len(joins) > 0 {
		delete(b.pendingJoin, key)
		for _, j := range joins {
			_ = b.h.AddEdge(j, op.ID)
		}
	}
	return op.ID
}

// Fork records that the threads listed in children are forked by strand
// (proc, parent) at its current position: each child's next (first) op will
// be program-order after the parent's most recent op. Mirrors the paper's
// partial-order local histories (the forall construct of Figure 3).
func (b *Builder) Fork(proc, parent int, children []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from, ok := b.lastOp[[2]int{proc, parent}]
	if !ok {
		return // nothing recorded yet on the parent; children float free
	}
	for _, c := range children {
		b.pendingFork[[2]int{proc, c}] = from
	}
}

// Join records that strand (proc, parent) joins the listed child threads:
// the parent's next op will be program-order after each child's most recent
// op.
func (b *Builder) Join(proc, parent int, children []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := [2]int{proc, parent}
	for _, c := range children {
		if last, ok := b.lastOp[[2]int{proc, c}]; ok {
			b.pendingJoin[key] = append(b.pendingJoin[key], last)
		}
	}
}

// Read records a labeled read by proc of loc returning value.
func (b *Builder) Read(proc int, loc string, value int64, label Label) int {
	return b.AppendOp(Op{Proc: proc, Kind: Read, Loc: loc, Value: value, Label: label})
}

// Write records a write by proc of value to loc.
func (b *Builder) Write(proc int, loc string, value int64) int {
	return b.AppendOp(Op{Proc: proc, Kind: Write, Loc: loc, Value: value})
}

// Await records an await(loc = value) by proc.
func (b *Builder) Await(proc int, loc string, value int64) int {
	return b.AppendOp(Op{Proc: proc, Kind: Await, Loc: loc, Value: value})
}

// Barrier records proc's arrival at barrier k.
func (b *Builder) Barrier(proc, k int) int {
	return b.AppendOp(Op{Proc: proc, Kind: Barrier, BarrierID: k})
}

// WLockEpoch records a write-lock acquire by proc on lock in a fresh epoch
// and returns the epoch, which the matching WUnlockEpoch must use.
func (b *Builder) WLockEpoch(proc int, lock string) int {
	b.mu.Lock()
	epoch := b.epochs[lock]
	b.epochs[lock]++
	b.mu.Unlock()
	b.AppendOp(Op{Proc: proc, Kind: WLock, Lock: lock, LockEpoch: epoch})
	return epoch
}

// WUnlockEpoch records the write-unlock matching epoch.
func (b *Builder) WUnlockEpoch(proc int, lock string, epoch int) int {
	return b.AppendOp(Op{Proc: proc, Kind: WUnlock, Lock: lock, LockEpoch: epoch})
}

// RLockEpoch records a read-lock acquire by proc on lock. Concurrent readers
// that should share an epoch pass the same epoch value; pass a fresh value
// from NextEpoch for a new read epoch.
func (b *Builder) RLockEpoch(proc int, lock string, epoch int) int {
	return b.AppendOp(Op{Proc: proc, Kind: RLock, Lock: lock, LockEpoch: epoch})
}

// RUnlockEpoch records the read-unlock matching epoch.
func (b *Builder) RUnlockEpoch(proc int, lock string, epoch int) int {
	return b.AppendOp(Op{Proc: proc, Kind: RUnlock, Lock: lock, LockEpoch: epoch})
}

// NextEpoch allocates and returns a fresh epoch number for lock.
func (b *Builder) NextEpoch(lock string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	epoch := b.epochs[lock]
	b.epochs[lock]++
	return epoch
}

// AddEdge records an explicit program-order edge (fork/join structure).
func (b *Builder) AddEdge(from, to int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.h.AddEdge(from, to)
}

// History returns the built history. The builder must not be used after.
func (b *Builder) History() *History {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.h
}

// Len returns the number of operations recorded so far.
func (b *Builder) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.h.Ops)
}
