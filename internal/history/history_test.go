package history

import (
	"errors"
	"strings"
	"testing"
)

func mustAnalyze(t *testing.T, h *History) *Analysis {
	t.Helper()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return a
}

func TestBuilderAssignsSeqPerStrand(t *testing.T) {
	b := NewBuilder(2)
	id0 := b.Write(0, "x", 1)
	id1 := b.Write(1, "y", 2)
	id2 := b.Write(0, "x", 3)
	h := b.History()
	if h.Ops[id0].Seq != 0 || h.Ops[id2].Seq != 1 {
		t.Errorf("proc 0 seqs = %d, %d; want 0, 1", h.Ops[id0].Seq, h.Ops[id2].Seq)
	}
	if h.Ops[id1].Seq != 0 {
		t.Errorf("proc 1 seq = %d, want 0", h.Ops[id1].Seq)
	}
}

func TestProgramOrderWithinProcess(t *testing.T) {
	b := NewBuilder(2)
	w1 := b.Write(0, "x", 1)
	w2 := b.Write(0, "y", 2)
	w3 := b.Write(0, "z", 3)
	other := b.Write(1, "q", 4)
	a := mustAnalyze(t, b.History())
	if !a.PO.Has(w1, w2) || !a.PO.Has(w2, w3) {
		t.Error("missing direct program-order edges")
	}
	if !a.PO.Has(w1, w3) {
		t.Error("program order not transitively closed")
	}
	if a.PO.Has(w1, other) || a.PO.Has(other, w1) {
		t.Error("program order crosses processes")
	}
}

func TestProgramOrderThreadsUnordered(t *testing.T) {
	b := NewBuilder(1)
	t0 := b.AppendOp(Op{Proc: 0, Thread: 0, Kind: Write, Loc: "x", Value: 1})
	t1 := b.AppendOp(Op{Proc: 0, Thread: 1, Kind: Write, Loc: "y", Value: 2})
	a := mustAnalyze(t, b.History())
	if a.PO.Has(t0, t1) || a.PO.Has(t1, t0) {
		t.Error("operations on different threads must be unordered")
	}
}

func TestExplicitEdgeJoinsThreads(t *testing.T) {
	b := NewBuilder(1)
	fork := b.AppendOp(Op{Proc: 0, Thread: 0, Kind: Write, Loc: "x", Value: 1})
	child := b.AppendOp(Op{Proc: 0, Thread: 1, Kind: Write, Loc: "y", Value: 2})
	if err := b.AddEdge(fork, child); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	a := mustAnalyze(t, b.History())
	if !a.PO.Has(fork, child) {
		t.Error("explicit edge missing from program order")
	}
}

func TestAddEdgeRejectsCrossProcess(t *testing.T) {
	b := NewBuilder(2)
	x := b.Write(0, "x", 1)
	y := b.Write(1, "y", 2)
	if err := b.AddEdge(x, y); !errors.Is(err, ErrBadOp) {
		t.Errorf("AddEdge across processes: got %v, want ErrBadOp", err)
	}
	if err := b.History().AddEdge(0, 99); !errors.Is(err, ErrBadOp) {
		t.Errorf("AddEdge out of range: got %v, want ErrBadOp", err)
	}
}

func TestReadsFrom(t *testing.T) {
	b := NewBuilder(2)
	w := b.Write(0, "x", 7)
	r := b.Read(1, "x", 7, LabelCausal)
	rInit := b.Read(1, "y", 0, LabelCausal)
	a := mustAnalyze(t, b.History())
	if !a.RF.Has(w, r) {
		t.Error("missing reads-from edge")
	}
	for i := range b.History().Ops {
		if a.RF.Has(i, rInit) {
			t.Error("initial-value read must have no reads-from predecessor")
		}
	}
}

func TestAwaitOrder(t *testing.T) {
	b := NewBuilder(2)
	w := b.Write(0, "flag", 1)
	aw := b.Await(1, "flag", 1)
	post := b.Write(1, "y", 2)
	a := mustAnalyze(t, b.History())
	if !a.AwaitOrder.Has(w, aw) {
		t.Error("missing |->await edge")
	}
	if !a.Causality.Has(w, post) {
		t.Error("causality must propagate through await")
	}
}

func TestLockOrderProperties(t *testing.T) {
	// Epoch 0: read epoch with two readers; epoch 1: write epoch; epoch 2:
	// read epoch. Mirrors the structure of Figure 1.
	b := NewBuilder(3)
	rl0 := b.RLockEpoch(0, "l", b.NextEpoch("l"))
	ru0 := b.RUnlockEpoch(0, "l", 0)
	rl1 := b.RLockEpoch(1, "l", 0)
	ru1 := b.RUnlockEpoch(1, "l", 0)
	e1 := b.WLockEpoch(2, "l")
	var wl2, wu2 int
	{
		h := b.History()
		wl2 = len(h.Ops) - 1
	}
	wu2 = b.WUnlockEpoch(2, "l", e1)
	e2 := b.NextEpoch("l")
	rl3 := b.RLockEpoch(0, "l", e2)
	ru3 := b.RUnlockEpoch(0, "l", e2)

	a := mustAnalyze(t, b.History())
	lo := a.LockOrder

	// Property 1: wl/wu totally ordered with respect to all rl/ru.
	for _, r := range []int{rl0, ru0, rl1, ru1} {
		if !lo.Has(r, wl2) || !lo.Has(r, wu2) {
			t.Errorf("epoch-0 op %d not ordered before write epoch", r)
		}
	}
	for _, r := range []int{rl3, ru3} {
		if !lo.Has(wl2, r) || !lo.Has(wu2, r) {
			t.Errorf("write epoch not ordered before epoch-2 op %d", r)
		}
	}
	if !lo.Has(wl2, wu2) {
		t.Error("wl must precede its matching wu")
	}
	// Property 2: nothing between wl and its matching wu.
	for i := range b.History().Ops {
		if i == wl2 || i == wu2 {
			continue
		}
		if lo.Has(wl2, i) && lo.Has(i, wu2) {
			t.Errorf("op %d ordered inside write critical section", i)
		}
	}
	// Property 3: no wl between rl and its matching ru.
	if lo.Has(rl0, wl2) && lo.Has(wl2, ru0) {
		t.Error("wl ordered inside read hold")
	}
	// Concurrent readers in one epoch are unordered by |->lock.
	if lo.Has(rl0, rl1) || lo.Has(rl1, rl0) {
		t.Error("readers in the same epoch must be unordered")
	}
}

func TestBarrierOrder(t *testing.T) {
	// Two processes, one barrier. Pre-barrier ops precede every process's
	// barrier op; post-barrier ops follow every process's barrier op.
	b := NewBuilder(2)
	pre0 := b.Write(0, "x", 1)
	b0 := b.Barrier(0, 1)
	post0 := b.Read(0, "y", 2, LabelPRAM)
	pre1 := b.Write(1, "y", 2)
	b1 := b.Barrier(1, 1)
	post1 := b.Read(1, "x", 1, LabelPRAM)

	a := mustAnalyze(t, b.History())
	bo := a.BarrierOrder
	for _, tc := range []struct{ from, to int }{
		{pre0, b0}, {pre0, b1}, {pre1, b0}, {pre1, b1},
		{b0, post0}, {b1, post0}, {b0, post1}, {b1, post1},
	} {
		if !bo.Has(tc.from, tc.to) {
			t.Errorf("missing |->bar edge %s -> %s",
				b.History().Ops[tc.from], b.History().Ops[tc.to])
		}
	}
	// Cross-phase causality: pre1's write must causally precede post0's read.
	if !a.Causality.Has(pre1, post0) {
		t.Error("barrier must causally order cross-process phases")
	}
}

func TestFigure1SynchronizationOrders(t *testing.T) {
	// Figure 1 of the paper: phase i has two read-lock holds and one write
	// hold on the same lock, followed by a barrier into phase i+1 with two
	// more read holds. We verify the synchronization orders the figure
	// depicts: reads before the write hold, reads after it, and the barrier
	// separating the phases.
	b := NewBuilder(3)
	// Phase i.
	e0 := b.NextEpoch("l")
	rlA := b.RLockEpoch(0, "l", e0)
	ruA := b.RUnlockEpoch(0, "l", e0)
	rlB := b.RLockEpoch(1, "l", e0)
	ruB := b.RUnlockEpoch(1, "l", e0)
	eW := b.WLockEpoch(2, "l")
	h := b.History()
	wl := len(h.Ops) - 1
	wu := b.WUnlockEpoch(2, "l", eW)
	e2 := b.NextEpoch("l")
	rlC := b.RLockEpoch(0, "l", e2)
	ruC := b.RUnlockEpoch(0, "l", e2)
	rlD := b.RLockEpoch(1, "l", e2)
	ruD := b.RUnlockEpoch(1, "l", e2)
	// Barrier into phase i+1.
	bar0 := b.Barrier(0, 1)
	bar1 := b.Barrier(1, 1)
	bar2 := b.Barrier(2, 1)
	// Phase i+1 operations.
	next0 := b.Write(0, "u", 1)
	next1 := b.Write(1, "v", 2)

	a := mustAnalyze(t, b.History())
	// Lock order: both early read holds precede the write hold; the write
	// hold precedes both later read holds.
	for _, early := range []int{rlA, ruA, rlB, ruB} {
		if !a.LockOrder.Has(early, wl) {
			t.Errorf("op %d must precede wl in |->lock", early)
		}
	}
	for _, late := range []int{rlC, ruC, rlD, ruD} {
		if !a.LockOrder.Has(wu, late) {
			t.Errorf("wu must precede op %d in |->lock", late)
		}
	}
	// Barrier order: every phase-i op precedes every process's barrier op,
	// and phase-i+1 ops follow them.
	for _, pre := range []int{ruA, ruB, wu, ruC, ruD} {
		for _, bar := range []int{bar0, bar1, bar2} {
			if !a.BarrierOrder.Has(pre, bar) {
				t.Errorf("phase-i op %d must precede barrier op %d", pre, bar)
			}
		}
	}
	for _, bar := range []int{bar0, bar1, bar2} {
		for _, post := range []int{next0, next1} {
			if !a.BarrierOrder.Has(bar, post) {
				t.Errorf("barrier op %d must precede phase-i+1 op %d", bar, post)
			}
		}
	}
	// The whole history's causality is acyclic (Analyze already checks),
	// and the write hold causally precedes phase i+1 on every process.
	if !a.Causality.Has(wl, next1) {
		t.Error("write hold must causally precede the next phase")
	}
}

func TestCausalViewExcludesOtherReads(t *testing.T) {
	b := NewBuilder(3)
	w := b.Write(0, "x", 1)
	rOther := b.Read(1, "x", 1, LabelCausal)
	rMine := b.Read(2, "x", 1, LabelCausal)
	a := mustAnalyze(t, b.History())
	view := a.CausalView(2)
	if !view.Has(w, rMine) {
		t.Error("own read must keep its reads-from edge in the causal view")
	}
	if view.Has(w, rOther) || view.Has(rOther, rMine) {
		t.Error("causal view must drop reads of other processes")
	}
}

func TestCausalityTransitsThroughOtherReads(t *testing.T) {
	// w0(x)1 -> r1(x)1 -> w1(y)2: the restriction of the closed relation
	// must still relate w0(x)1 to w1(y)2 for p2's view.
	b := NewBuilder(3)
	w0 := b.Write(0, "x", 1)
	b.Read(1, "x", 1, LabelCausal)
	w1 := b.Write(1, "y", 2)
	a := mustAnalyze(t, b.History())
	if !a.CausalView(2).Has(w0, w1) {
		t.Error("causal view must keep transitive dependence through another process's read")
	}
}

func TestPRAMOrderDropsIndirectDependence(t *testing.T) {
	// The canonical PRAM/causal separation: p0 writes x, p1 reads it and
	// writes y, p2 reads y. Under ~>2,P the edge w0(x) -> w1(y) vanishes
	// because it passes through p1's read, which touches neither endpoint
	// at p2.
	b := NewBuilder(3)
	w0 := b.Write(0, "x", 1)
	b.Read(1, "x", 1, LabelPRAM)
	w1 := b.Write(1, "y", 2)
	r2 := b.Read(2, "y", 2, LabelPRAM)
	a := mustAnalyze(t, b.History())
	p2 := a.PRAMOrder(2)
	if !p2.Has(w1, r2) {
		t.Error("direct reads-from edge to p2 must survive")
	}
	if p2.Has(w0, r2) {
		t.Error("indirect dependence through p1's read must not reach p2 in PRAM order")
	}
	// Under the causal view it does reach p2.
	if !a.CausalView(2).Has(w0, r2) {
		t.Error("causal view must relate w0(x) to p2's read")
	}
}

func TestPRAMOrderKeepsSyncEdges(t *testing.T) {
	// Await edges incident on p1 are kept in ~>1,P, so the write the await
	// matched is visible.
	b := NewBuilder(2)
	w := b.Write(0, "flag", 1)
	aw := b.Await(1, "flag", 1)
	r := b.Read(1, "flag", 1, LabelPRAM)
	a := mustAnalyze(t, b.History())
	p1 := a.PRAMOrder(1)
	if !p1.Has(w, aw) || !p1.Has(w, r) {
		t.Error("await sync edge must appear in PRAM order of the awaiting process")
	}
}

func TestValidateUnmatchedUnlock(t *testing.T) {
	b := NewBuilder(1)
	b.AppendOp(Op{Proc: 0, Kind: WUnlock, Lock: "l", LockEpoch: 0})
	if _, err := b.History().Analyze(); !errors.Is(err, ErrUnmatchedUnlock) {
		t.Errorf("got %v, want ErrUnmatchedUnlock", err)
	}
}

func TestValidateDoubleAcquire(t *testing.T) {
	b := NewBuilder(1)
	b.AppendOp(Op{Proc: 0, Kind: WLock, Lock: "l", LockEpoch: 0})
	b.AppendOp(Op{Proc: 0, Kind: WLock, Lock: "l", LockEpoch: 1})
	if _, err := b.History().Analyze(); !errors.Is(err, ErrBadLockEpoch) {
		t.Errorf("got %v, want ErrBadLockEpoch", err)
	}
}

func TestValidateMixedEpoch(t *testing.T) {
	b := NewBuilder(2)
	b.AppendOp(Op{Proc: 0, Kind: WLock, Lock: "l", LockEpoch: 0})
	b.AppendOp(Op{Proc: 0, Kind: WUnlock, Lock: "l", LockEpoch: 0})
	b.AppendOp(Op{Proc: 1, Kind: RLock, Lock: "l", LockEpoch: 0})
	b.AppendOp(Op{Proc: 1, Kind: RUnlock, Lock: "l", LockEpoch: 0})
	if _, err := b.History().Analyze(); !errors.Is(err, ErrBadLockEpoch) {
		t.Errorf("got %v, want ErrBadLockEpoch", err)
	}
}

func TestValidateDuplicateWriteValue(t *testing.T) {
	b := NewBuilder(2)
	b.Write(0, "x", 5)
	b.Write(1, "x", 5)
	if _, err := b.History().Analyze(); !errors.Is(err, ErrDuplicateValue) {
		t.Errorf("got %v, want ErrDuplicateValue", err)
	}
}

func TestValidateBarrierUnorderedAcrossThreads(t *testing.T) {
	b := NewBuilder(1)
	b.AppendOp(Op{Proc: 0, Thread: 0, Kind: Barrier, BarrierID: 1})
	b.AppendOp(Op{Proc: 0, Thread: 1, Kind: Write, Loc: "x", Value: 1})
	if _, err := b.History().Analyze(); !errors.Is(err, ErrBarrierUnordered) {
		t.Errorf("got %v, want ErrBarrierUnordered", err)
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{Op{Proc: 2, Kind: Read, Loc: "y", Value: 3, Label: LabelCausal}, "r2(y)3[Causal]"},
		{Op{Proc: 1, Kind: Write, Loc: "z", Value: 4}, "w1(z)4"},
		{Op{Proc: 0, Kind: Await, Loc: "x", Value: 9}, "a0(x)9"},
		{Op{Proc: 3, Kind: WLock, Lock: "l", LockEpoch: 2}, "wl3(l)@2"},
		{Op{Proc: 1, Kind: Barrier, BarrierID: 4}, "b4_1"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestSameObject(t *testing.T) {
	w := Op{Kind: Write, Loc: "x"}
	r := Op{Kind: Read, Loc: "x"}
	ry := Op{Kind: Read, Loc: "y"}
	wl := Op{Kind: WLock, Lock: "x"}
	bar := Op{Kind: Barrier, BarrierID: 1}
	bar2 := Op{Kind: Barrier, BarrierID: 1}
	if !w.SameObject(r) {
		t.Error("same location must match")
	}
	if w.SameObject(ry) {
		t.Error("different locations must not match")
	}
	if w.SameObject(wl) {
		t.Error("a lock named like a location is a different object")
	}
	if !bar.SameObject(bar2) {
		t.Error("same barrier index must match")
	}
	if bar.SameObject(w) {
		t.Error("barrier and memory op must not match")
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation(70) // spans two words
	r.Add(0, 65)
	r.Add(65, 69)
	if !r.Has(0, 65) || r.Has(65, 0) {
		t.Fatal("Add/Has broken across word boundary")
	}
	r.TransitiveClose()
	if !r.Has(0, 69) {
		t.Error("closure missed multi-word path")
	}
	if r.Pairs() != 3 {
		t.Errorf("Pairs = %d, want 3", r.Pairs())
	}
	c := r.Clone()
	c.Add(1, 2)
	if r.Has(1, 2) {
		t.Error("Clone aliases original")
	}
}

func TestTransitiveReduce(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(0, 2) // redundant
	red := r.TransitiveReduce()
	if !red.Has(0, 1) || !red.Has(1, 2) {
		t.Error("reduction dropped necessary edges")
	}
	if red.Has(0, 2) {
		t.Error("reduction kept redundant edge")
	}
}

func TestHasCycle(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 2)
	if r.HasCycle() {
		t.Error("acyclic graph reported cyclic")
	}
	r.Add(2, 0)
	if !r.HasCycle() {
		t.Error("cycle not detected")
	}
	self := NewRelation(2)
	self.Add(1, 1)
	if !self.HasCycle() {
		t.Error("self-loop not detected")
	}
}

func TestHistoryAppendDirect(t *testing.T) {
	h := New(1)
	a := h.Append(Op{Proc: 0, Kind: Write, Loc: "x", Value: 1})
	b := h.Append(Op{Proc: 0, Kind: Write, Loc: "y", Value: 2})
	if h.Ops[a].Seq != 0 || h.Ops[b].Seq != 1 {
		t.Errorf("Append seqs = %d, %d; want 0, 1", h.Ops[a].Seq, h.Ops[b].Seq)
	}
}

func BenchmarkAnalyzeMediumHistory(b *testing.B) {
	bld := NewBuilder(4)
	for p := 0; p < 4; p++ {
		for i := 0; i < 15; i++ {
			bld.Write(p, "x"+string(rune('0'+p)), int64(p*100+i+1))
			bld.Read(p, "x"+string(rune('0'+(p+1)%4)), 0, LabelPRAM)
		}
	}
	h := bld.History()
	// Pre-check it analyzes (reads of 0 may conflict with nothing).
	if _, err := h.Analyze(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitiveClose256(b *testing.B) {
	base := NewRelation(256)
	for i := 0; i < 255; i++ {
		base.Add(i, i+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := base.Clone()
		r.TransitiveClose()
	}
}

func TestWriteDOT(t *testing.T) {
	// A history whose reduced causality keeps one edge of each color:
	// the barrier edges survive (no data path parallels them), the
	// post-barrier reads-from edge survives (no sync path parallels it),
	// and program order supplies the black edges.
	b := NewBuilder(2)
	b.Write(0, "a", 1)
	b.Barrier(0, 1)
	b.Barrier(1, 1)
	b.Write(1, "b", 2)
	b.Write(0, "x", 9)
	b.Read(1, "x", 9, LabelCausal)
	a := mustAnalyze(t, b.History())
	var buf strings.Builder
	if err := a.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph history", "cluster_p0", "cluster_p1",
		`label="w0(a)1"`, `label="b1_0"`, "color=red", "color=blue", "color=black",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
