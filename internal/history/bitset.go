package history

import "math/bits"

// Relation is a binary relation over operation IDs 0..n-1, stored as a dense
// bit matrix. Row i holds the set {j : i R j}. The representation keeps the
// transitive-closure and restriction computations of Section 3 cheap for the
// history sizes the checker handles (thousands of operations).
type Relation struct {
	n     int
	words int
	rows  []uint64
}

// NewRelation returns an empty relation over n elements.
func NewRelation(n int) *Relation {
	words := (n + 63) / 64
	return &Relation{n: n, words: words, rows: make([]uint64, n*words)}
}

// Size returns the number of elements the relation ranges over.
func (r *Relation) Size() int { return r.n }

// Add inserts the pair (i, j).
func (r *Relation) Add(i, j int) {
	r.rows[i*r.words+j/64] |= 1 << (uint(j) % 64)
}

// Has reports whether (i, j) is in the relation.
func (r *Relation) Has(i, j int) bool {
	return r.rows[i*r.words+j/64]&(1<<(uint(j)%64)) != 0
}

// Clone returns an independent copy.
func (r *Relation) Clone() *Relation {
	out := &Relation{n: r.n, words: r.words, rows: make([]uint64, len(r.rows))}
	copy(out.rows, r.rows)
	return out
}

// Union adds every pair of other into r. The relations must have equal size.
func (r *Relation) Union(other *Relation) {
	for i := range r.rows {
		r.rows[i] |= other.rows[i]
	}
}

// Pairs returns the number of pairs in the relation.
func (r *Relation) Pairs() int {
	total := 0
	for _, w := range r.rows {
		total += bits.OnesCount64(w)
	}
	return total
}

// TransitiveClose replaces r with its transitive closure using a bitset
// Floyd–Warshall: for each intermediate k, every row that reaches k absorbs
// row k. O(n^2 * n/64).
func (r *Relation) TransitiveClose() {
	for k := 0; k < r.n; k++ {
		krow := r.rows[k*r.words : (k+1)*r.words]
		kword, kbit := k/64, uint64(1)<<(uint(k)%64)
		for i := 0; i < r.n; i++ {
			irow := r.rows[i*r.words : (i+1)*r.words]
			if irow[kword]&kbit == 0 {
				continue
			}
			for w := range irow {
				irow[w] |= krow[w]
			}
		}
	}
}

// TransitiveReduce returns the transitive reduction of r, assuming r is a
// DAG that is already transitively closed: the pair (i, j) survives iff there
// is no k with i R k and k R j. The paper uses transitive reductions of the
// synchronization orders to build the PRAM order (Definition 3, step 1).
func (r *Relation) TransitiveReduce() *Relation {
	out := NewRelation(r.n)
	for i := 0; i < r.n; i++ {
		irow := r.rows[i*r.words : (i+1)*r.words]
		for j := 0; j < r.n; j++ {
			if !r.Has(i, j) || i == j {
				continue
			}
			// (i, j) is redundant if some k != i, j has i R k R j.
			redundant := false
			for w := 0; w < r.words && !redundant; w++ {
				cand := irow[w]
				if cand == 0 {
					continue
				}
				for cand != 0 {
					b := bits.TrailingZeros64(cand)
					cand &^= 1 << uint(b)
					k := w*64 + b
					if k != i && k != j && r.Has(k, j) {
						redundant = true
						break
					}
				}
			}
			if !redundant {
				out.Add(i, j)
			}
		}
	}
	return out
}

// Restrict returns r limited to pairs whose endpoints both satisfy keep.
func (r *Relation) Restrict(keep func(int) bool) *Relation {
	out := NewRelation(r.n)
	for i := 0; i < r.n; i++ {
		if !keep(i) {
			continue
		}
		irow := r.rows[i*r.words : (i+1)*r.words]
		orow := out.rows[i*r.words : (i+1)*r.words]
		for w, word := range irow {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				j := w*64 + b
				if keep(j) {
					orow[w] |= 1 << uint(b)
				}
			}
		}
	}
	return out
}

// RestrictEndpoint returns the subrelation of pairs with at least one
// endpoint satisfying touch — the |->i construction of Definition 3, step 2:
// "those edges that either emanate from or are incident upon operations of
// process p_i".
func (r *Relation) RestrictEndpoint(touch func(int) bool) *Relation {
	out := NewRelation(r.n)
	for i := 0; i < r.n; i++ {
		irow := r.rows[i*r.words : (i+1)*r.words]
		for w, word := range irow {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				j := w*64 + b
				if touch(i) || touch(j) {
					out.Add(i, j)
				}
			}
		}
	}
	return out
}

// HasCycle reports whether the relation, viewed as a directed graph, has a
// cycle. Histories must have acyclic causality relations (Section 3).
func (r *Relation) HasCycle() bool {
	const (
		white = int8(0)
		gray  = int8(1)
		black = int8(2)
	)
	color := make([]int8, r.n)
	type frame struct{ node, next int }
	var stack []frame
	for start := 0; start < r.n; start++ {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], frame{start, 0})
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			pushed := false
			j := f.next
			for ; j < r.n; j++ {
				if !r.Has(f.node, j) {
					continue
				}
				if color[j] == gray {
					return true
				}
				if color[j] == white {
					f.next = j + 1
					color[j] = gray
					stack = append(stack, frame{j, 0})
					pushed = true
					break
				}
				// black successor: keep scanning.
			}
			if pushed {
				continue
			}
			f.next = j
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}
