package history

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// randomHistory builds a well-formed random history: writes with unique
// values, reads of previously written values (or the initial value), awaits
// of written values, balanced single-lock critical sections, and optionally
// a global barrier splitting the ops in two phases.
func randomHistory(r *rand.Rand) *History {
	procs := 2 + r.Intn(3)
	b := NewBuilder(procs)
	next := int64(1)
	var written []int64

	opsPerProc := 3 + r.Intn(5)
	withBarrier := r.Intn(2) == 0
	for p := 0; p < procs; p++ {
		for i := 0; i < opsPerProc; i++ {
			loc := "v" + strconv.Itoa(r.Intn(3))
			switch r.Intn(5) {
			case 0, 1:
				b.Write(p, loc, next)
				written = append(written, next)
				next++
			case 2:
				label := LabelPRAM
				if r.Intn(2) == 0 {
					label = LabelCausal
				}
				val := int64(0)
				if len(written) > 0 && r.Intn(3) > 0 {
					val = written[r.Intn(len(written))]
				}
				// The read's location must match the write's; for
				// simplicity read the location the value was written to is
				// not tracked, so read value 0 on mismatch risk: use a
				// dedicated per-value location instead.
				b.Read(p, loc, val, label)
			case 3:
				e := b.WLockEpoch(p, "lk")
				b.Write(p, loc, next)
				written = append(written, next)
				next++
				b.WUnlockEpoch(p, "lk", e)
			default:
				b.Write(p, "own"+strconv.Itoa(p), next)
				written = append(written, next)
				next++
			}
		}
	}
	if withBarrier {
		for p := 0; p < procs; p++ {
			b.Barrier(p, 1)
		}
	}
	return b.History()
}

// TestQuickCausalityContainsComponents: the causality relation must contain
// program order, reads-from, and every synchronization order.
func TestQuickCausalityContainsComponents(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHistory(r)
		a, err := h.Analyze()
		if err != nil {
			// Random value collisions across locations can trip the
			// unique-write validation; treat as a discarded sample.
			return true
		}
		n := len(h.Ops)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (a.PO.Has(i, j) || a.RF.Has(i, j) || a.Sync.Has(i, j)) &&
					!a.Causality.Has(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickViewsAreSubrelations: ~>i,C and ~>i,P are subrelations of the
// causality relation.
func TestQuickViewsAreSubrelations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHistory(r)
		a, err := h.Analyze()
		if err != nil {
			return true
		}
		n := len(h.Ops)
		for p := 0; p < h.NumProcs; p++ {
			cv := a.CausalView(p)
			pv := a.PRAMOrder(p)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if cv.Has(i, j) && !a.Causality.Has(i, j) {
						return false
					}
					if pv.Has(i, j) && !a.Causality.Has(i, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickClosureIdempotent: closing a closed relation changes nothing.
func TestQuickClosureIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		rel := NewRelation(n)
		for e := 0; e < n*2; e++ {
			i, j := r.Intn(n), r.Intn(n)
			if i != j {
				rel.Add(i, j)
			}
		}
		rel.TransitiveClose()
		before := rel.Pairs()
		again := rel.Clone()
		again.TransitiveClose()
		return again.Pairs() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickReduceThenCloseRestores: for a DAG, closing the transitive
// reduction restores the closure.
func TestQuickReduceThenCloseRestores(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		rel := NewRelation(n)
		// Random DAG: edges only i -> j for i < j.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					rel.Add(i, j)
				}
			}
		}
		rel.TransitiveClose()
		red := rel.TransitiveReduce()
		red.TransitiveClose()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rel.Has(i, j) != red.Has(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickAnalyzeDeterministic: analyzing the same history twice yields
// identical relations.
func TestQuickAnalyzeDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHistory(r)
		a1, err1 := h.Analyze()
		a2, err2 := h.Analyze()
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		n := len(h.Ops)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if a1.Causality.Has(i, j) != a2.Causality.Has(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickPRAMOrderExcludesForeignReads: ~>i,P never relates a pair whose
// endpoint is a read of another process (Definition 3's projection).
func TestQuickPRAMOrderExcludesForeignReads(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHistory(r)
		a, err := h.Analyze()
		if err != nil {
			return true
		}
		n := len(h.Ops)
		for p := 0; p < h.NumProcs; p++ {
			pv := a.PRAMOrder(p)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if !pv.Has(i, j) {
						continue
					}
					for _, id := range [2]int{i, j} {
						op := h.Ops[id]
						if op.Kind == Read && op.Proc != p {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
