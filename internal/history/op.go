package history

import (
	"fmt"
	"strconv"
)

// OpKind identifies the kind of an operation in a history. Memory operations
// are Read, Write, and Await (an await reads a memory location, Section 3.1.3
// of the paper); the remaining kinds are synchronization operations on lock
// and barrier objects disjoint from the memory locations.
type OpKind int

// The operation kinds of the mixed-consistency model.
const (
	Read OpKind = iota + 1
	Write
	Await
	RLock
	RUnlock
	WLock
	WUnlock
	Barrier
)

// String returns the paper's notation for the kind.
func (k OpKind) String() string {
	switch k {
	case Read:
		return "r"
	case Write:
		return "w"
	case Await:
		return "a"
	case RLock:
		return "rl"
	case RUnlock:
		return "ru"
	case WLock:
		return "wl"
	case WUnlock:
		return "wu"
	case Barrier:
		return "bar"
	default:
		return "op(" + strconv.Itoa(int(k)) + ")"
	}
}

// IsLock reports whether k is one of the four lock operations.
func (k OpKind) IsLock() bool {
	return k == RLock || k == RUnlock || k == WLock || k == WUnlock
}

// IsSync reports whether k is a synchronization operation (lock, barrier, or
// await).
func (k OpKind) IsSync() bool {
	return k.IsLock() || k == Barrier || k == Await
}

// Label classifies a read operation by the consistency condition it demands.
// The paper's Definition 4 introduces the PRAM/Causal pair; the runtime
// generalizes it to a four-point lattice
//
//	Slow < PRAM < Causal < SC
//
// ordered by strength: a Slow read is guaranteed only per-location per-writer
// FIFO (Hutto & Ahamad's slow memory), a PRAM read additionally respects each
// writer's cross-location program order, a Causal read respects transitive
// causality, and an SC read participates in a single global total order
// consistent with program order. Writes and synchronization operations carry
// LabelNone. The constant values of the original pair are preserved for wire
// and fixture compatibility; use Rank for lattice comparisons, not the raw
// constant values.
type Label int

// Read labels.
const (
	LabelNone Label = iota
	LabelPRAM
	LabelCausal
	LabelSlow
	LabelSC
)

// String names the label.
func (l Label) String() string {
	switch l {
	case LabelNone:
		return "none"
	case LabelPRAM:
		return "PRAM"
	case LabelCausal:
		return "Causal"
	case LabelSlow:
		return "Slow"
	case LabelSC:
		return "SC"
	default:
		return "label(" + strconv.Itoa(int(l)) + ")"
	}
}

// Rank orders labels by guarantee strength on the lattice
// Slow(0) < PRAM(1) < Causal(2) < SC(3). LabelNone ranks below Slow: it
// promises nothing. Stronger labels admit strictly fewer histories.
func (l Label) Rank() int {
	switch l {
	case LabelSlow:
		return 1
	case LabelPRAM:
		return 2
	case LabelCausal:
		return 3
	case LabelSC:
		return 4
	default:
		return 0
	}
}

// Stronger reports whether l sits strictly above other on the lattice.
func (l Label) Stronger(other Label) bool { return l.Rank() > other.Rank() }

// LatticeLabels lists the four lattice points from weakest to strongest —
// the order every spectrum sweep and verdict table iterates in.
func LatticeLabels() [4]Label {
	return [4]Label{LabelSlow, LabelPRAM, LabelCausal, LabelSC}
}

// Op is one operation of a history. The zero value is not a valid operation;
// construct ops through Builder or the runtime recorder.
//
// Following the paper, every write is assumed to carry a distinct value for
// its location, so the reads-from relation is recoverable from values alone.
type Op struct {
	// ID is the operation's index in History.Ops.
	ID int
	// Proc identifies the issuing process p_i.
	Proc int
	// Thread distinguishes concurrent threads within a process. The paper
	// models local computations as partial orders; program order relates
	// two operations of a process only when they are on the same thread
	// (or connected by an explicit edge added with History.AddEdge).
	Thread int
	// Seq is the operation's position in its (Proc, Thread) sequence.
	Seq int
	// Kind is the operation kind.
	Kind OpKind
	// Loc is the memory location for Read, Write, and Await.
	Loc string
	// Value is the value read, written, or awaited.
	Value int64
	// Label classifies reads as PRAM or Causal.
	Label Label
	// Lock names the lock object for lock operations.
	Lock string
	// LockEpoch positions a lock operation in the per-lock grant order
	// |->lock (Section 3.1.1): operations in a smaller epoch precede
	// operations in a larger epoch; a write epoch holds exactly one
	// wl/wu pair (wl before wu); a read epoch holds any number of rl/ru.
	LockEpoch int
	// BarrierID is the barrier index k for Barrier operations: all
	// operations b^k across processes form one global barrier.
	BarrierID int
	// BarrierGroup names the barrier object for subset barriers ("" is the
	// global barrier). The paper notes a barrier "can also be defined for
	// a subset of processes by restricting the range of the universal
	// quantification to the subset"; operations with the same
	// (BarrierGroup, BarrierID) form one barrier instance over exactly the
	// processes that issued them.
	BarrierGroup string
}

// String renders the operation in the paper's notation, e.g. "w1(x)4" or
// "r2(y)3[Causal]".
func (o Op) String() string {
	switch o.Kind {
	case Read:
		return fmt.Sprintf("r%d(%s)%d[%s]", o.Proc, o.Loc, o.Value, o.Label)
	case Write:
		return fmt.Sprintf("w%d(%s)%d", o.Proc, o.Loc, o.Value)
	case Await:
		return fmt.Sprintf("a%d(%s)%d", o.Proc, o.Loc, o.Value)
	case RLock, RUnlock, WLock, WUnlock:
		return fmt.Sprintf("%s%d(%s)@%d", o.Kind, o.Proc, o.Lock, o.LockEpoch)
	case Barrier:
		return fmt.Sprintf("b%d_%d", o.BarrierID, o.Proc)
	default:
		return fmt.Sprintf("op%d?", o.ID)
	}
}

// SameObject reports whether two operations touch the same object: the same
// memory location, the same lock, or the same barrier index.
func (o Op) SameObject(other Op) bool {
	switch {
	case o.Kind == Barrier && other.Kind == Barrier:
		return o.BarrierID == other.BarrierID && o.BarrierGroup == other.BarrierGroup
	case o.Kind == Barrier || other.Kind == Barrier:
		return false
	case o.Kind.IsLock() && other.Kind.IsLock():
		return o.Lock == other.Lock
	case o.Kind.IsLock() || other.Kind.IsLock():
		return false
	default:
		return o.Loc == other.Loc
	}
}

// readsMemory reports whether the operation observes a memory location's
// value (reads and awaits).
func (o Op) readsMemory() bool { return o.Kind == Read || o.Kind == Await }
