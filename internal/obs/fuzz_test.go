package obs

import (
	"reflect"
	"testing"
)

// FuzzSnapshotCodecRoundTrip drives the trace snapshot wire codec — the
// format the fleet drain ships through the DSM and `mixedtrace` reads —
// with arbitrary bytes: decoding must never panic, and any snapshot that
// decodes must re-encode and re-decode to the same value. Same pattern as
// the dsm and tcp codec fuzzers.
func FuzzSnapshotCodecRoundTrip(f *testing.F) {
	full := sampleSnapshot()
	empty := &Snapshot{Tag: "", Node: 0, Capacity: 64}
	wrapped := &Snapshot{Tag: "t", Node: 1, Capacity: 64, Recorded: 100, Dropped: 36,
		Locs: []string{"x"},
		Events: []Event{
			{Index: 99, Time: -5, Type: EvFramePark, Label: 255, Peer: 65535,
				Loc: NoLoc, Seq: 1 << 60, A: ^uint64(0), B: 7},
		}}
	for _, s := range []*Snapshot{full, empty, wrapped} {
		f.Add(AppendSnapshot(nil, s))
	}
	f.Add([]byte{})
	f.Add([]byte{'M', 'X', 'T', 'R', 1, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, _, err := DecodeSnapshot(data)
		if err != nil {
			return // rejected cleanly: that is the contract
		}
		enc := AppendSnapshot(nil, dec)
		dec2, n, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded snapshot failed: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n, len(enc))
		}
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatalf("round trip changed the snapshot:\n%+v\n%+v", dec, dec2)
		}
	})
}
