package tracecheck

import (
	"testing"

	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/obs"
)

// FuzzCheckTrace drives the full mixedtrace -check pipeline — decode an
// arbitrary byte stream as a trace, then replay whatever snapshots come out
// through the discipline checker — with the invariant that it never
// panics: hostile Loc indices, absurd counts, and truncated intern tables
// must all be absorbed. Seeds cover a clean phased run, every violation
// kind, and a wrapped ring.
func FuzzCheckTrace(f *testing.F) {
	clean := snap("run", 0, []string{"x", "m"}, append(append([]obs.Event{
		write(0, history.LabelPRAM, dsm.OpSet, 1),
	}, barrier(0)...), []obs.Event{
		{Type: obs.EvLockAcquire, Loc: 1, B: 1},
		write(0, history.LabelPRAM, dsm.OpSet, 2),
		{Type: obs.EvLockRelease, Loc: 1, B: 1},
		{Type: obs.EvAwaitBegin, Loc: 0, A: 2},
		{Type: obs.EvAwaitEnd, Loc: 0, Seq: 2},
	}...))
	seeded := snap("bad", 1, []string{"x", "m"}, append(barrier(0), []obs.Event{
		write(0, history.LabelSlow, dsm.OpSet, 1),
		write(0, history.LabelSlow, dsm.OpSet, 2),
		{Type: obs.EvLockAcquire, Loc: 1, B: 0},
		write(0, history.LabelNone, dsm.OpSet, 3),
		{Type: obs.EvLockRelease, Loc: 1, B: 1},
		{Type: obs.EvAwaitBegin, Loc: 0, A: 9},
	}...))
	wrapped := snap("wrap", 2, []string{"m"}, []obs.Event{
		{Type: obs.EvLockRelease, Loc: 0, B: 1},
	})
	wrapped.Dropped = 5
	hostile := snap("evil", 3, nil, []obs.Event{
		{Type: obs.EvLockAcquire, Loc: 1 << 20, B: 1},
		{Type: obs.EvWriteIssue, Loc: obs.NoLoc, Label: 250, B: ^uint64(0)},
		{Type: obs.EvBarrierExit, Loc: obs.NoLoc, Seq: ^uint64(0)},
		{Type: obs.EvWriteIssue, Loc: obs.NoLoc, Label: uint8(history.LabelPRAM), B: 1},
	})
	f.Add(obs.EncodeTrace([]*obs.Snapshot{clean, seeded}))
	f.Add(obs.EncodeTrace([]*obs.Snapshot{wrapped, hostile}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snaps, err := obs.DecodeTrace(data)
		if err != nil {
			return // rejected cleanly: that is the codec's contract
		}
		res := Check(snaps)
		if res == nil {
			t.Fatal("Check returned nil")
		}
		if len(res.Violations) > 0 && res.NodesChecked == 0 {
			t.Fatalf("violations from zero checked nodes: %+v", res)
		}
	})
}
