package tracecheck

import (
	"testing"

	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/obs"
)

// snap builds a snapshot over the given intern table, assigning indices.
func snap(tag string, node int, locs []string, events []obs.Event) *obs.Snapshot {
	for i := range events {
		events[i].Index = uint64(i)
	}
	return &obs.Snapshot{
		Tag: tag, Node: node, Capacity: 1 << 10,
		Recorded: uint64(len(events)), Locs: locs, Events: events,
	}
}

func write(loc uint32, label history.Label, op dsm.UpdateOp, seq uint64) obs.Event {
	return obs.Event{Type: obs.EvWriteIssue, Loc: loc, Label: uint8(label), Seq: seq, B: uint64(op)}
}

func barrier(episode uint64) []obs.Event {
	return []obs.Event{
		{Type: obs.EvBarrierEnter, Loc: obs.NoLoc, Seq: episode},
		{Type: obs.EvBarrierExit, Loc: obs.NoLoc, Seq: episode},
	}
}

func kinds(res *Result) map[string]int {
	m := make(map[string]int)
	for _, v := range res.Violations {
		m[v.Kind]++
	}
	return m
}

// TestCleanRun: a disciplined two-node run — phase-separated PRAM writes,
// balanced locks, a matched await, counter updates — checks clean.
func TestCleanRun(t *testing.T) {
	locs := []string{"x", "y", "m", "hits"}
	n0 := snap("run", 0, locs, append(append([]obs.Event{
		write(0, history.LabelPRAM, dsm.OpSet, 1),
	}, barrier(0)...), []obs.Event{
		write(0, history.LabelPRAM, dsm.OpSet, 2), // same loc, next phase
		{Type: obs.EvLockAcquire, Loc: 2, B: 1},
		write(1, history.LabelNone, dsm.OpSet, 3),
		{Type: obs.EvLockRelease, Loc: 2, B: 1},
		{Type: obs.EvAwaitBegin, Loc: 0, A: 2},
		{Type: obs.EvAwaitEnd, Loc: 0, Seq: 2},
	}...))
	n1 := snap("run", 1, locs, append(append([]obs.Event{
		write(3, history.LabelPRAM, dsm.OpAdd, 1), // counter: exempt even if doubled
		write(3, history.LabelPRAM, dsm.OpAdd, 2),
	}, barrier(0)...), []obs.Event{
		{Type: obs.EvLockAcquire, Loc: 2, B: 0},
		{Type: obs.EvLockRelease, Loc: 2, B: 0},
	}...))
	res := Check([]*obs.Snapshot{n0, n1})
	if len(res.Violations) != 0 {
		t.Fatalf("clean run produced violations: %v", res.Violations)
	}
	if res.NodesChecked != 2 || !res.PhaseChecked || res.WritesChecked != 5 {
		t.Fatalf("coverage: %+v", res)
	}
}

// TestSeededViolations seeds one breach of every kind and expects each to
// surface exactly where planted.
func TestSeededViolations(t *testing.T) {
	locs := []string{"x", "m", "w"}
	// Node 0 writes "x" in phase 1; node 1 writes it in the same phase.
	n0 := snap("bad", 0, locs, append(barrier(0),
		write(0, history.LabelPRAM, dsm.OpSet, 1)))
	n1 := snap("bad", 1, locs, append(barrier(0), []obs.Event{
		write(0, history.LabelSlow, dsm.OpSet, 1), // phase double write (cross-node)
		{Type: obs.EvLockAcquire, Loc: 1, B: 0},
		write(2, history.LabelNone, dsm.OpSet, 2), // plain write under read lock
		{Type: obs.EvLockRelease, Loc: 1, B: 1},   // wrong-mode release
		{Type: obs.EvLockRelease, Loc: 1, B: 0},   // release while free
		{Type: obs.EvLockAcquire, Loc: 1, B: 1},
		{Type: obs.EvLockAcquire, Loc: 1, B: 1}, // re-acquire while held
		{Type: obs.EvAwaitBegin, Loc: 2, A: 9},  // never matches
	}...))
	res := Check([]*obs.Snapshot{n0, n1})
	got := kinds(res)
	want := map[string]int{
		KindPhaseDoubleWrite:   1,
		KindWriteUnderReadLock: 1,
		KindLockPairing:        4, // wrong mode, free release, re-acquire, held at end
		KindAwaitUnmatched:     1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: got %d violations, want %d\nall: %v", k, got[k], n, res.Violations)
		}
	}
	if len(res.Violations) != 7 {
		t.Errorf("total violations: got %d, want 7: %v", len(res.Violations), res.Violations)
	}
}

// TestPhaseCheckNeedsBarriers: without a global barrier the run is not
// phase-structured, so repeated writes are not judged by Corollary 2.
func TestPhaseCheckNeedsBarriers(t *testing.T) {
	s := snap("serve", 0, []string{"k"}, []obs.Event{
		write(0, history.LabelPRAM, dsm.OpSet, 1),
		write(0, history.LabelPRAM, dsm.OpSet, 2),
	})
	res := Check([]*obs.Snapshot{s})
	if len(res.Violations) != 0 || res.PhaseChecked {
		t.Fatalf("barrier-free run judged by the phase rule: %+v", res)
	}
}

// TestSubsetBarrierIsNotAPhaseBoundary: BarrierGroup events carry a group
// name; they must neither advance the phase nor enable the phase check.
func TestSubsetBarrierIsNotAPhaseBoundary(t *testing.T) {
	s := snap("grp", 0, []string{"x", "left"}, []obs.Event{
		write(0, history.LabelPRAM, dsm.OpSet, 1),
		{Type: obs.EvBarrierEnter, Loc: 1, Seq: 0},
		{Type: obs.EvBarrierExit, Loc: 1, Seq: 0},
		write(0, history.LabelPRAM, dsm.OpSet, 2),
	})
	res := Check([]*obs.Snapshot{s})
	if res.PhaseChecked || len(res.Violations) != 0 {
		t.Fatalf("subset barrier treated as phase boundary: %+v", res)
	}
}

// TestCausalWritesExempt: Causal/SC-labeled writes carry their own
// ordering; doubling them in a phase is not a Corollary 2 breach.
func TestCausalWritesExempt(t *testing.T) {
	s := snap("causal", 0, []string{"x"}, append(barrier(0), []obs.Event{
		write(0, history.LabelCausal, dsm.OpSet, 1),
		write(0, history.LabelCausal, dsm.OpSet, 2),
	}...))
	if res := Check([]*obs.Snapshot{s}); len(res.Violations) != 0 {
		t.Fatalf("causal writes judged by the phase rule: %v", res.Violations)
	}
}

// TestDroppedNodeSkipped: a wrapped ring makes pairing unjudgeable; the
// node is skipped rather than half-checked.
func TestDroppedNodeSkipped(t *testing.T) {
	s := snap("wrap", 0, []string{"m"}, []obs.Event{
		{Type: obs.EvLockRelease, Loc: 0, B: 1}, // would be a violation...
	})
	s.Dropped = 3 // ...but the acquire may be among the overwritten records
	res := Check([]*obs.Snapshot{s})
	if len(res.Violations) != 0 || res.NodesSkipped != 1 || res.NodesChecked != 0 {
		t.Fatalf("wrapped node not skipped: %+v", res)
	}
}

// TestTagsAreIndependentRuns: phases do not leak across tags — two tags
// each writing "x" once in phase 1 is clean.
func TestTagsAreIndependentRuns(t *testing.T) {
	a := snap("a", 0, []string{"x"}, append(barrier(0),
		write(0, history.LabelPRAM, dsm.OpSet, 1)))
	b := snap("b", 0, []string{"x"}, append(barrier(0),
		write(0, history.LabelPRAM, dsm.OpSet, 1)))
	if res := Check([]*obs.Snapshot{a, b}); len(res.Violations) != 0 {
		t.Fatalf("phases leaked across tags: %v", res.Violations)
	}
}

// TestLegacyTraceOpUnknown: traces recorded before EvWriteIssue carried the
// update op have B == 0; such writes are judged as plain writes.
func TestLegacyTraceOpUnknown(t *testing.T) {
	s := snap("old", 0, []string{"x"}, append(barrier(0), []obs.Event{
		{Type: obs.EvWriteIssue, Loc: 0, Label: uint8(history.LabelPRAM), Seq: 1},
		{Type: obs.EvWriteIssue, Loc: 0, Label: uint8(history.LabelPRAM), Seq: 2},
	}...))
	res := Check([]*obs.Snapshot{s})
	if got := kinds(res)[KindPhaseDoubleWrite]; got != 1 {
		t.Fatalf("legacy-op double write not judged: %+v", res)
	}
}
