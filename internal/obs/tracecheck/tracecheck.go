// Package tracecheck replays a recorded event trace (obs.Snapshot) and
// verifies the paper's program disciplines on the execution that actually
// happened — the dynamic counterpart of the static mixedvet analyzers, with
// the same rules so the two can be cross-validated on one program:
//
//   - lock pairing (lockdiscipline): per node and lock name, an acquire
//     while held, a release while free, a release in the wrong mode, and a
//     lock still held when the ring was snapshotted are all violations;
//   - writes under read locks (lockdiscipline): a plain write (OpSet)
//     issued while the node holds any lock in read mode breaks the
//     read-side critical section;
//   - barrier-phase write placement (phasediscipline, Corollary 2): in a
//     run that uses the global barrier, a PRAM- or Slow-labeled location
//     written twice by plain writes in one barrier phase — by any
//     combination of nodes — leaves the PRAM-justified program class.
//     Counter updates (Add/AddFloat) commute and are exempt (Section 5.3);
//     Causal/SC-labeled writes carry their own ordering and need no phase
//     placement; subset barriers (BarrierGroup) are not phase boundaries.
//   - await matching (scopeusage): an Await that began and never matched by
//     snapshot time is the runtime signature of scoped replication that
//     never delivers to the reader (or a hung producer).
//
// A node whose ring wrapped (Dropped > 0) is skipped entirely: with records
// missing, pairing and phase placement cannot be judged soundly, and a
// half-checked node would report phantom violations.
package tracecheck

import (
	"fmt"
	"sort"

	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/obs"
)

// Violation kinds.
const (
	KindLockPairing        = "lock-pairing"
	KindWriteUnderReadLock = "write-under-read-lock"
	KindPhaseDoubleWrite   = "phase-double-write"
	KindAwaitUnmatched     = "await-unmatched"
)

// Violation is one discipline breach found in a trace.
type Violation struct {
	Tag  string
	Node int
	Kind string
	// Loc is the location or lock name involved.
	Loc string
	// Index is the offending event's index in its node's record stream
	// (the second write, for phase double writes).
	Index uint64
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s node %d [%s] %s", v.Tag, v.Node, v.Kind, v.Msg)
}

// Result is a full trace check: the violations plus what was actually
// judged, so "zero violations" can be told apart from "nothing to check".
type Result struct {
	Violations []Violation
	// NodesChecked and NodesSkipped count node snapshots judged and node
	// snapshots skipped for ring wrap.
	NodesChecked, NodesSkipped int
	// WritesChecked counts EvWriteIssue events judged.
	WritesChecked int
	// PhaseChecked reports whether the barrier-phase placement check ran
	// for at least one tag (it needs a run that uses the global barrier).
	PhaseChecked bool
}

// phaseWrite is one plain PRAM/Slow write placed in its barrier phase.
type phaseWrite struct {
	node  int
	index uint64
	phase uint64
	loc   string
}

// Check replays the snapshots and returns every discipline violation.
// Snapshots are grouped by Tag: each tag is one run, so barrier phases
// align across its nodes; different tags are independent executions.
func Check(snaps []*obs.Snapshot) *Result {
	res := &Result{}
	byTag := make(map[string][]*obs.Snapshot)
	var tags []string
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if _, ok := byTag[s.Tag]; !ok {
			tags = append(tags, s.Tag)
		}
		byTag[s.Tag] = append(byTag[s.Tag], s)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		checkRun(res, tag, byTag[tag])
	}
	sort.Slice(res.Violations, func(i, j int) bool {
		a, b := res.Violations[i], res.Violations[j]
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Index < b.Index
	})
	return res
}

// checkRun checks one run: per-node lock pairing and await matching, then
// the cross-node phase placement of the run's plain PRAM/Slow writes.
func checkRun(res *Result, tag string, snaps []*obs.Snapshot) {
	var writes []phaseWrite
	barriers := false
	for _, s := range snaps {
		if s.Dropped > 0 {
			res.NodesSkipped++
			continue
		}
		res.NodesChecked++
		writes = append(writes, checkNode(res, tag, s, &barriers)...)
	}
	if !barriers {
		// No global barrier in this run: the program is not phase-structured,
		// so Corollary 2's placement rule does not apply to it.
		return
	}
	res.PhaseChecked = true
	type key struct {
		phase uint64
		loc   string
	}
	first := make(map[key]phaseWrite)
	reported := make(map[key]bool)
	for _, w := range writes {
		k := key{w.phase, w.loc}
		prev, seen := first[k]
		if !seen {
			first[k] = w
			continue
		}
		if reported[k] {
			continue
		}
		reported[k] = true
		res.Violations = append(res.Violations, Violation{
			Tag: tag, Node: w.node, Kind: KindPhaseDoubleWrite, Loc: w.loc, Index: w.index,
			Msg: fmt.Sprintf("location %q written twice in barrier phase %d (nodes %d and %d): the run is outside Corollary 2's PRAM-justified class",
				w.loc, w.phase, prev.node, w.node),
		})
	}
}

// checkNode replays one node's record stream and returns its plain
// PRAM/Slow writes placed in their barrier phases.
func checkNode(res *Result, tag string, s *obs.Snapshot, barriers *bool) []phaseWrite {
	const (
		free = iota
		readHeld
		writeHeld
	)
	locks := make(map[string]int)    // lock name -> mode
	awaiting := make(map[string]int) // location -> unmatched await begins
	var phase uint64
	var writes []phaseWrite
	report := func(kind, loc string, index uint64, format string, args ...any) {
		res.Violations = append(res.Violations, Violation{
			Tag: tag, Node: s.Node, Kind: kind, Loc: loc, Index: index,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	for _, e := range s.Events {
		switch e.Type {
		case obs.EvLockAcquire:
			name := s.LocName(e.Loc)
			mode, want := readHeld, "read"
			if e.B != 0 {
				mode, want = writeHeld, "write"
			}
			if held := locks[name]; held != free {
				report(KindLockPairing, name, e.Index,
					"lock %q acquired in %s mode while already held", name, want)
			}
			locks[name] = mode
		case obs.EvLockRelease:
			name := s.LocName(e.Loc)
			mode, word := readHeld, "read"
			if e.B != 0 {
				mode, word = writeHeld, "write"
			}
			switch held := locks[name]; {
			case held == free:
				report(KindLockPairing, name, e.Index,
					"lock %q released in %s mode while not held", name, word)
			case held != mode:
				report(KindLockPairing, name, e.Index,
					"lock %q released in %s mode but held in the other", name, word)
			}
			delete(locks, name)
		case obs.EvBarrierEnter, obs.EvBarrierExit:
			if s.LocName(e.Loc) != "" {
				continue // subset barrier: not a phase boundary
			}
			*barriers = true
			if e.Type == obs.EvBarrierExit {
				phase = e.Seq + 1
			}
		case obs.EvAwaitBegin:
			awaiting[s.LocName(e.Loc)]++
		case obs.EvAwaitEnd:
			if name := s.LocName(e.Loc); awaiting[name] > 0 {
				awaiting[name]--
			}
		case obs.EvWriteIssue:
			res.WritesChecked++
			loc := s.LocName(e.Loc)
			if dsm.UpdateOp(e.B) != dsm.OpSet && e.B != 0 {
				continue // counter update: commutes, exempt from both checks
			}
			for name, mode := range locks {
				if mode == readHeld {
					report(KindWriteUnderReadLock, loc, e.Index,
						"plain write to %q issued under read lock %q", loc, name)
					break
				}
			}
			switch history.Label(e.Label) {
			case history.LabelPRAM, history.LabelSlow:
				writes = append(writes, phaseWrite{node: s.Node, index: e.Index, phase: phase, loc: loc})
			}
		}
	}
	var held []string
	for name := range locks {
		held = append(held, name)
	}
	sort.Strings(held)
	for _, name := range held {
		report(KindLockPairing, name, s.Recorded,
			"lock %q still held when the ring was snapshotted", name)
	}
	var waiting []string
	for name, n := range awaiting {
		if n > 0 {
			waiting = append(waiting, name)
		}
	}
	sort.Strings(waiting)
	for _, name := range waiting {
		report(KindAwaitUnmatched, name, s.Recorded,
			"await on %q never matched by snapshot time: scoped replication may never deliver to this reader", name)
	}
	return writes
}
