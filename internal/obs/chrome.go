package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome exporter renders a merged trace in the Chrome trace-event
// JSON format Perfetto loads directly: one process track per (tag, node),
// wait intervals as complete ("X") slices reconstructed from the waited
// nanoseconds their end events carry, point events as instants, flow
// arrows ("s"/"f") binding each outbox flush to the matching receive on
// the destination node, and counter ("C") tracks for outbox depth and
// cumulative blocked time.

// chromeEvent is one trace-event record; fields follow the Chrome
// trace-event format spec.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// waitSlice maps end-of-wait event types to the slice name rendered for
// the interval their A field (waited nanoseconds) reconstructs.
var waitSlice = map[EventType]string{
	EvAwaitEnd:    "await",
	EvDepWaitEnd:  "dep-wait",
	EvFenceWait:   "fence-wait",
	EvInvalWait:   "inval-wait",
	EvWaitCounts:  "wait-counts",
	EvSCReply:     "sc-round-trip",
	EvLockAcquire: "lock-wait",
	EvBarrierExit: "barrier",
}

// WriteChromeTrace renders the snapshots as one Perfetto-loadable JSON
// document. Timestamps are shifted so the earliest event is t=0.
func WriteChromeTrace(w io.Writer, snaps []*Snapshot) error {
	var base int64
	for _, s := range snaps {
		for _, e := range s.Events {
			if base == 0 || e.Time < base {
				base = e.Time
			}
		}
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	// Stable pid assignment: tags sorted, nodes within a tag by ID.
	type track struct {
		tag  string
		node int
	}
	var tracks []track
	for _, s := range snaps {
		tracks = append(tracks, track{s.Tag, s.Node})
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].tag != tracks[j].tag {
			return tracks[i].tag < tracks[j].tag
		}
		return tracks[i].node < tracks[j].node
	})
	pids := map[track]int{}
	for _, t := range tracks {
		if _, ok := pids[t]; !ok {
			pids[t] = len(pids) + 1
		}
	}

	doc := chromeTrace{DisplayTimeUnit: "ns"}
	emit := func(e chromeEvent) { doc.TraceEvents = append(doc.TraceEvents, e) }

	for tr, pid := range pids {
		name := fmt.Sprintf("node %d", tr.node)
		if tr.tag != "" {
			name = fmt.Sprintf("%s · node %d", tr.tag, tr.node)
		}
		emit(chromeEvent{Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": name}})
	}

	for _, s := range snaps {
		pid := pids[track{s.Tag, s.Node}]
		var blockedNS uint64
		for _, e := range s.Events {
			args := map[string]any{"seq": e.Seq}
			if loc := s.LocName(e.Loc); loc != "" {
				args["loc"] = loc
			}
			switch {
			case waitSlice[e.Type] != "":
				d := e.A
				if e.Type == EvAwaitEnd || e.Type == EvSCReply {
					args["writer"] = e.Peer
				}
				emit(chromeEvent{Name: waitSlice[e.Type], Phase: "X", Cat: "wait",
					TS: us(e.Time - int64(d)), Dur: float64(d) / 1e3,
					PID: pid, TID: 1, Args: args})
				blockedNS += d
				emit(chromeEvent{Name: "blocked (ms)", Phase: "C", TS: us(e.Time),
					PID: pid, TID: 0,
					Args: map[string]any{"blocked": float64(blockedNS) / 1e6}})
			case e.Type == EvFlush:
				args["last"] = e.A
				args["count"] = e.B
				// A 1µs stub slice anchors the outgoing flow arrow.
				emit(chromeEvent{Name: "flush", Phase: "X", Cat: "msg",
					TS: us(e.Time), Dur: 1, PID: pid, TID: 2, Args: args})
				emit(chromeEvent{Name: "msg", Phase: "s", Cat: "msg",
					ID: flowID(s.Node, int(e.Peer), e.Seq),
					TS: us(e.Time), PID: pid, TID: 2})
				emit(chromeEvent{Name: "outbox depth", Phase: "C", TS: us(e.Time),
					PID: pid, TID: 0, Args: map[string]any{"pending": 0}})
			case e.Type == EvRecv || e.Type == EvRecvBatch:
				if e.Type == EvRecvBatch {
					args["last"] = e.A
					args["count"] = e.B
				}
				args["from"] = e.Peer
				emit(chromeEvent{Name: e.Type.String(), Phase: "X", Cat: "msg",
					TS: us(e.Time), Dur: 1, PID: pid, TID: 2, Args: args})
				emit(chromeEvent{Name: "msg", Phase: "f", BP: "e", Cat: "msg",
					ID: flowID(int(e.Peer), s.Node, e.Seq),
					TS: us(e.Time), PID: pid, TID: 2})
			case e.Type == EvEnqueue:
				args["dest"] = e.Peer
				emit(chromeEvent{Name: "enqueue", Phase: "i", Scope: "t",
					Cat: "msg", TS: us(e.Time), PID: pid, TID: 2, Args: args})
				emit(chromeEvent{Name: "outbox depth", Phase: "C", TS: us(e.Time),
					PID: pid, TID: 0, Args: map[string]any{"pending": e.A}})
			default:
				if e.Peer != 0 {
					args["peer"] = e.Peer
				}
				emit(chromeEvent{Name: e.Type.String(), Phase: "i", Scope: "t",
					Cat: "event", TS: us(e.Time), PID: pid, TID: 1, Args: args})
			}
		}
	}

	sort.SliceStable(doc.TraceEvents, func(i, j int) bool {
		return doc.TraceEvents[i].TS < doc.TraceEvents[j].TS
	})
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// flowID names the flow arrow of one flushed batch: sender, receiver, and
// first covered seq identify it on both ends.
func flowID(from, to int, firstSeq uint64) string {
	return fmt.Sprintf("%d-%d-%d", from, to, firstSeq)
}
