package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chainSnapshots builds the minimal two-node trace of one write-visibility
// sample: node 0 writes seq 5 (issue 1000ns, enqueue 1200, flush 2000),
// node 1 observes it (recv 2500, apply 2600, release 2800, await-end
// 3000).
func chainSnapshots() []*Snapshot {
	writer := &Snapshot{Tag: "run", Node: 0, Locs: []string{"vis/0/0/f0"}, Events: []Event{
		{Index: 0, Time: 1000, Type: EvWriteIssue, Loc: 0, Seq: 5},
		{Index: 1, Time: 1200, Type: EvEnqueue, Peer: 1, Loc: 0, Seq: 5, A: 1},
		{Index: 2, Time: 2000, Type: EvFlush, Peer: 1, Seq: 5, A: 5, B: 1},
	}}
	reader := &Snapshot{Tag: "run", Node: 1, Locs: []string{"vis/0/0/f0"}, Events: []Event{
		{Index: 0, Time: 2500, Type: EvRecvBatch, Peer: 0, Seq: 5, A: 5, B: 1},
		{Index: 1, Time: 2600, Type: EvApply, Peer: 0, Seq: 5, Loc: 0},
		{Index: 2, Time: 2800, Type: EvGroupRelease, Peer: 0, Seq: 5, A: 5, B: 1},
		{Index: 3, Time: 3000, Type: EvAwaitEnd, Peer: 0, Seq: 5, Loc: 0, A: 900},
	}}
	return []*Snapshot{writer, reader}
}

func isVis(loc string) bool { return strings.HasPrefix(loc, "vis/") }

// TestExplainFullChain pins exact telescoping attribution: with every
// chain event present, the six segments sum to precisely the end-to-end
// interval.
func TestExplainFullChain(t *testing.T) {
	ex := Explain(chainSnapshots(), isVis)
	if len(ex.SamplesOut) != 1 || len(ex.Breakdowns) != 1 {
		t.Fatalf("got %d samples, %d breakdowns", len(ex.SamplesOut), len(ex.Breakdowns))
	}
	s := ex.SamplesOut[0]
	if !s.Complete {
		t.Fatalf("sample incomplete: %+v", s)
	}
	if s.Writer != 0 || s.Reader != 1 || s.Seq != 5 || s.Loc != "vis/0/0/f0" {
		t.Fatalf("sample identity = %+v", s)
	}
	want := [NumSegments]time.Duration{200, 800, 500, 100, 200, 200}
	if s.Segments != want {
		t.Fatalf("segments = %v, want %v", s.Segments, want)
	}
	if s.Total != 2000 || s.Attributed() != s.Total {
		t.Fatalf("total = %v attributed = %v", s.Total, s.Attributed())
	}
	b := ex.Breakdowns[0]
	if b.MinAttribution != 1 || b.Samples != 1 || b.Incomplete != 0 {
		t.Fatalf("breakdown = %+v", b)
	}
}

// TestExplainMissingInterior drops an interior chain event (the flush):
// its interval must merge into the following segment and attribution stay
// exact — the soundness contract for rings that wrapped over interior
// events.
func TestExplainMissingInterior(t *testing.T) {
	snaps := chainSnapshots()
	var kept []Event
	for _, e := range snaps[0].Events {
		if e.Type != EvFlush {
			kept = append(kept, e)
		}
	}
	snaps[0].Events = kept

	ex := Explain(snaps, isVis)
	s := ex.SamplesOut[0]
	if !s.Complete {
		t.Fatalf("sample incomplete: %+v", s)
	}
	// outbox has no end point; enqueue→recv (1300ns) lands in wire.
	want := [NumSegments]time.Duration{200, 0, 1300, 100, 200, 200}
	if s.Segments != want {
		t.Fatalf("segments = %v, want %v", s.Segments, want)
	}
	if s.Attributed() != s.Total {
		t.Fatalf("attribution broke: %v of %v", s.Attributed(), s.Total)
	}
}

// TestExplainTruncatedAnchor drops the write-issue anchor, as a wrapped
// writer ring would: the sample must be reported incomplete, not guessed.
func TestExplainTruncatedAnchor(t *testing.T) {
	snaps := chainSnapshots()
	snaps[0].Events = snaps[0].Events[1:] // drop EvWriteIssue
	ex := Explain(snaps, isVis)
	if len(ex.SamplesOut) != 1 {
		t.Fatalf("got %d samples", len(ex.SamplesOut))
	}
	if s := ex.SamplesOut[0]; s.Complete || s.Total != 0 {
		t.Fatalf("truncated sample not flagged: %+v", s)
	}
	b := ex.Breakdowns[0]
	if b.Incomplete != 1 || b.MinAttribution != 0 {
		t.Fatalf("breakdown = %+v", b)
	}
}

// TestExplainGroupsByTag checks that snapshots of different runs never
// cross-match: same node IDs and seqs, different tags.
func TestExplainGroupsByTag(t *testing.T) {
	a := chainSnapshots()
	b := chainSnapshots()
	for _, s := range b {
		s.Tag = "other"
	}
	// Shift run b's clocks so cross-matching would corrupt attribution.
	for _, s := range b {
		for i := range s.Events {
			s.Events[i].Time += 50000
		}
	}
	ex := Explain(append(a, b...), isVis)
	if len(ex.Breakdowns) != 2 || len(ex.SamplesOut) != 2 {
		t.Fatalf("got %d breakdowns, %d samples", len(ex.Breakdowns), len(ex.SamplesOut))
	}
	for _, s := range ex.SamplesOut {
		if !s.Complete || s.Attributed() != s.Total || s.Total != 2000 {
			t.Fatalf("cross-tag contamination: %+v", s)
		}
	}
}

// TestWriteTable smoke-tests the rendered breakdown table.
func TestWriteTable(t *testing.T) {
	ex := Explain(chainSnapshots(), isVis)
	var buf bytes.Buffer
	ex.WriteTable(&buf)
	out := buf.String()
	for _, want := range append([]string{"tag", "run"}, SegmentNames[:]...) {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestChromeExport checks the exporter produces valid JSON with the
// expected track metadata, flow endpoints, and counter samples.
func TestChromeExport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, chainSnapshots()); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["M"] != 2 {
		t.Fatalf("want 2 process-name metadata events, got %d", phases["M"])
	}
	if phases["s"] != 1 || phases["f"] != 1 {
		t.Fatalf("want one flow start and one flow end, got %+v", phases)
	}
	if phases["C"] == 0 || phases["X"] == 0 {
		t.Fatalf("missing counter or slice events: %+v", phases)
	}
}
