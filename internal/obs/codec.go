package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The snapshot wire form is the unit of the fleet trace drain: each node
// encodes its ring snapshot to bytes, ships the bytes through the DSM as
// packed int64 cells (BytesToCells), and the collector decodes and merges
// them. A trace file is just snapshots concatenated, so the same codec is
// the export format of `mixedbench -trace` and the input format of
// `mixedtrace`.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "MXTR", version byte
//	tag       len + bytes
//	node, capacity, recorded, dropped
//	nlocs, then per location: len + bytes
//	nevents, then per event:
//	  index, time (zigzag), type byte, label byte, peer, loc, seq, a, b
//
// The decoder is the wire contract: it must never panic on arbitrary
// bytes, and every accepted input must re-encode and re-decode to the
// same value (FuzzSnapshotCodecRoundTrip pins both).

var traceMagic = [5]byte{'M', 'X', 'T', 'R', 1}

var errShort = errors.New("obs: truncated snapshot")

// AppendSnapshot encodes s onto buf and returns the extended slice.
func AppendSnapshot(buf []byte, s *Snapshot) []byte {
	buf = append(buf, traceMagic[:]...)
	buf = appendString(buf, s.Tag)
	buf = binary.AppendUvarint(buf, uint64(s.Node))
	buf = binary.AppendUvarint(buf, uint64(s.Capacity))
	buf = binary.AppendUvarint(buf, s.Recorded)
	buf = binary.AppendUvarint(buf, s.Dropped)
	buf = binary.AppendUvarint(buf, uint64(len(s.Locs)))
	for _, l := range s.Locs {
		buf = appendString(buf, l)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Events)))
	for i := range s.Events {
		e := &s.Events[i]
		buf = binary.AppendUvarint(buf, e.Index)
		buf = binary.AppendVarint(buf, e.Time)
		buf = append(buf, byte(e.Type), e.Label)
		buf = binary.AppendUvarint(buf, uint64(e.Peer))
		buf = binary.AppendUvarint(buf, uint64(e.Loc))
		buf = binary.AppendUvarint(buf, e.Seq)
		buf = binary.AppendUvarint(buf, e.A)
		buf = binary.AppendUvarint(buf, e.B)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeSnapshot decodes one snapshot from the front of data, returning
// it and the number of bytes consumed. Arbitrary input is rejected with
// an error, never a panic; count fields are bounded by the remaining
// input, so hostile lengths cannot force large allocations.
func DecodeSnapshot(data []byte) (*Snapshot, int, error) {
	d := &decoder{buf: data}
	var magic [5]byte
	d.bytes(magic[:])
	if d.err == nil && magic != traceMagic {
		return nil, 0, fmt.Errorf("obs: bad snapshot magic %q", magic[:])
	}
	s := &Snapshot{}
	s.Tag = d.str()
	s.Node = int(d.uvarBounded(1 << 20))
	s.Capacity = int(d.uvarBounded(1 << 40))
	s.Recorded = d.uvar()
	s.Dropped = d.uvar()
	nlocs := d.uvarBounded(uint64(len(data)))
	if d.err == nil {
		s.Locs = make([]string, 0, min(int(nlocs), 1024))
		for i := uint64(0); i < nlocs && d.err == nil; i++ {
			s.Locs = append(s.Locs, d.str())
		}
	}
	nev := d.uvarBounded(uint64(len(data)))
	if d.err == nil {
		s.Events = make([]Event, 0, min(int(nev), 4096))
		for i := uint64(0); i < nev && d.err == nil; i++ {
			var e Event
			e.Index = d.uvar()
			e.Time = d.varint()
			e.Type = EventType(d.byte())
			e.Label = d.byte()
			e.Peer = uint16(d.uvarBounded(1 << 16))
			e.Loc = uint32(d.uvarBounded(1 << 32))
			e.Seq = d.uvar()
			e.A = d.uvar()
			e.B = d.uvar()
			if d.err == nil {
				s.Events = append(s.Events, e)
			}
		}
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	return s, d.off, nil
}

// EncodeTrace encodes a merged trace: snapshots back to back.
func EncodeTrace(snaps []*Snapshot) []byte {
	var buf []byte
	for _, s := range snaps {
		buf = AppendSnapshot(buf, s)
	}
	return buf
}

// DecodeTrace decodes a concatenation of snapshots until the input is
// exhausted.
func DecodeTrace(data []byte) ([]*Snapshot, error) {
	var snaps []*Snapshot
	for len(data) > 0 {
		s, n, err := DecodeSnapshot(data)
		if err != nil {
			return nil, err
		}
		snaps = append(snaps, s)
		data = data[n:]
	}
	return snaps, nil
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) bytes(dst []byte) {
	if d.err != nil {
		return
	}
	if len(d.buf)-d.off < len(dst) {
		d.err = errShort
		return
	}
	copy(dst, d.buf[d.off:])
	d.off += len(dst)
}

func (d *decoder) byte() byte {
	var b [1]byte
	d.bytes(b[:])
	return b[0]
}

func (d *decoder) uvar() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = errShort
		return 0
	}
	d.off += n
	return v
}

// uvarBounded reads a uvarint and rejects values at or above limit — the
// guard that keeps count and ID fields from becoming allocation bombs or
// overflowing their packed-field width.
func (d *decoder) uvarBounded(limit uint64) uint64 {
	v := d.uvar()
	if d.err == nil && v >= limit {
		d.err = fmt.Errorf("obs: field value %d out of range (limit %d)", v, limit)
		return 0
	}
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = errShort
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := d.uvar()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = errShort
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// BytesToCells packs an encoded byte stream into int64 memory cells for
// shipping through the DSM itself: cell 0 is the byte length, each
// following cell holds eight little-endian payload bytes. This is the
// trace analogue of the histogram bucket-cell codec — the fleet drain
// writes these cells under obs/<node>/... and the collector reassembles
// them after a barrier.
func BytesToCells(data []byte) []int64 {
	cells := make([]int64, 1+(len(data)+7)/8)
	cells[0] = int64(len(data))
	for i := 0; i < len(data); i += 8 {
		var w [8]byte
		copy(w[:], data[i:])
		cells[1+i/8] = int64(binary.LittleEndian.Uint64(w[:]))
	}
	return cells
}

// CellsToBytes reverses BytesToCells.
func CellsToBytes(cells []int64) ([]byte, error) {
	if len(cells) == 0 {
		return nil, errors.New("obs: empty cell stream")
	}
	n := cells[0]
	if n < 0 || int(n) > (len(cells)-1)*8 {
		return nil, fmt.Errorf("obs: cell stream claims %d bytes but carries %d cells", n, len(cells)-1)
	}
	buf := make([]byte, (len(cells)-1)*8)
	for i, c := range cells[1:] {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(c))
	}
	return buf[:n], nil
}
