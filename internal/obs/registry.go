package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// The registry is the unified metrics surface: every subsystem's counters
// — the memory layer's per-label read/write/blocked stats, the transport's
// message and byte counters, lock and barrier client stats, and the
// tracer's own ring state — appear behind one snapshot shape served as an
// expvar-style JSON document by `mixednode -obs`. obs is a leaf package,
// so the structs below are plain data; the conversions from dsm.Stats,
// network.Stats, and friends live with their owners (internal/core wires
// them up).

// MemMetrics is the memory layer's snapshot: operation counts by label
// and the blocked aggregate split by cause. BlockedByCause sums to
// BlockedNS (the per-cause split is pinned by a regression test in
// internal/dsm).
type MemMetrics struct {
	Writes      uint64 `json:"writes"`
	PRAMReads   uint64 `json:"pramReads"`
	CausalReads uint64 `json:"causalReads"`
	SlowReads   uint64 `json:"slowReads"`
	SCReads     uint64 `json:"scReads"`
	SCWrites    uint64 `json:"scWrites"`
	Awaits      uint64 `json:"awaits"`
	// BlockedNS is total time blocked in waits, in nanoseconds;
	// BlockedByCause splits it by wait cause: "await", "causal-wait",
	// "sc", "invalidation".
	BlockedNS        int64            `json:"blockedNs"`
	BlockedByCause   map[string]int64 `json:"blockedByCauseNs"`
	MalformedUpdates uint64           `json:"malformedUpdates"`
}

// NetMetrics is the transport snapshot: totals, per-destination sends,
// and per-kind message/byte breakdowns. The maps are deep copies private
// to the snapshot.
type NetMetrics struct {
	MessagesSent uint64            `json:"messagesSent"`
	BytesSent    uint64            `json:"bytesSent"`
	PerNodeSent  []uint64          `json:"perNodeSent,omitempty"`
	PerKind      map[string]uint64 `json:"perKind,omitempty"`
	PerKindBytes map[string]uint64 `json:"perKindBytes,omitempty"`
	// TCP link diagnostics; zero on the simulated fabric.
	Dials        uint64 `json:"dials,omitempty"`
	DialFailures uint64 `json:"dialFailures,omitempty"`
	Replayed     uint64 `json:"replayed,omitempty"`
	Duplicates   uint64 `json:"duplicates,omitempty"`
	DecodeErrors uint64 `json:"decodeErrors,omitempty"`
}

// SyncMetrics is the synchronization-client snapshot.
type SyncMetrics struct {
	LockAcquires    uint64 `json:"lockAcquires"`
	LockAcquireNS   int64  `json:"lockAcquireNs"`
	LockReleaseNS   int64  `json:"lockReleaseNs"`
	Barriers        uint64 `json:"barriers"`
	BarrierWaitNS   int64  `json:"barrierWaitNs"`
	ManagerMessages uint64 `json:"managerMessages,omitempty"`
}

// TraceMetrics is the tracer's own state.
type TraceMetrics struct {
	Enabled  bool   `json:"enabled"`
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
}

// TraceMetricsOf snapshots a tracer's ring counters (nil tracer reports
// disabled).
func TraceMetricsOf(t *Tracer) TraceMetrics {
	if t == nil {
		return TraceMetrics{}
	}
	return TraceMetrics{Enabled: true, Capacity: t.Capacity(),
		Recorded: t.Recorded(), Dropped: t.Dropped()}
}

// LocationMetrics is one location's access profile (from the memory
// layer's TrackAccess log), the per-location breakdown of the registry.
type LocationMetrics struct {
	Loc    string   `json:"loc"`
	Labels []string `json:"labels"`
}

// Registry is a named collection of snapshot sections served as one JSON
// document. Sections are functions, so every request (or Snapshot call)
// observes live counters; registration order is preserved in the output.
type Registry struct {
	mu       sync.Mutex
	order    []string
	sections map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sections: map[string]func() any{}}
}

// Register adds (or replaces) a named section.
func (r *Registry) Register(name string, fn func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sections[name]; !ok {
		r.order = append(r.order, name)
	}
	r.sections[name] = fn
}

// Snapshot evaluates every section.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fns := make([]func() any, len(names))
	for i, n := range names {
		fns[i] = r.sections[n]
	}
	r.mu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = fns[i]()
	}
	return out
}

// ServeHTTP serves the snapshot as indented JSON, expvar-style: one
// object, one key per registered section, keys in sorted order (JSON maps
// marshal sorted).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.Snapshot())
}

// SectionNames lists the registered sections in registration order.
func (r *Registry) SectionNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
