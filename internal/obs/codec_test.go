package obs

import (
	"reflect"
	"testing"
)

func sampleSnapshot() *Snapshot {
	s := &Snapshot{
		Tag:      "causal-scoped/r4000",
		Node:     2,
		Capacity: 4096,
		Recorded: 41,
		Dropped:  0,
		Locs:     []string{"sess/0/k1", "vis/0/0/f0"},
	}
	s.Events = []Event{
		{Index: 0, Time: 1723372800000000000, Type: EvWriteIssue, Label: 2, Loc: 0, Seq: 1, A: 3},
		{Index: 1, Time: 1723372800000000100, Type: EvEnqueue, Peer: 1, Loc: 0, Seq: 1, A: 1},
		{Index: 2, Time: 1723372800000000400, Type: EvFlush, Peer: 1, Seq: 1, A: 1, B: 1},
		{Index: 3, Time: 1723372800000000900, Type: EvAwaitEnd, Peer: 1, Loc: 1, Seq: 1, A: 700},
	}
	return s
}

// TestSnapshotCodecRoundTrip pins the wire form: encode → decode is the
// identity on snapshots, including multi-snapshot traces and the packed
// cell transport.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	enc := AppendSnapshot(nil, s)
	dec, n, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if dec.Tag != s.Tag || dec.Node != s.Node || dec.Capacity != s.Capacity ||
		dec.Recorded != s.Recorded || dec.Dropped != s.Dropped {
		t.Fatalf("header changed: %+v vs %+v", dec, s)
	}
	if !reflect.DeepEqual(dec.Locs, s.Locs) || !reflect.DeepEqual(dec.Events, s.Events) {
		t.Fatalf("payload changed:\n%+v\n%+v", dec, s)
	}

	// A merged trace of two snapshots decodes back to both.
	s2 := sampleSnapshot()
	s2.Node = 3
	s2.Tag = "broadcast/r1000"
	trace := EncodeTrace([]*Snapshot{s, s2})
	snaps, err := DecodeTrace(trace)
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if len(snaps) != 2 || snaps[0].Node != 2 || snaps[1].Node != 3 {
		t.Fatalf("trace decoded to %+v", snaps)
	}

	// Cell transport: bytes → int64 cells → bytes is the identity for
	// every length mod 8.
	for cut := 0; cut < 9 && cut < len(enc); cut++ {
		data := enc[:len(enc)-cut]
		back, err := CellsToBytes(BytesToCells(data))
		if err != nil {
			t.Fatalf("cells round trip (cut %d): %v", cut, err)
		}
		if !reflect.DeepEqual(back, data) {
			t.Fatalf("cells changed the bytes at cut %d", cut)
		}
	}
}

// TestDecodeRejectsCorruption spot-checks the decoder's rejection paths:
// truncation at every prefix, bad magic, and hostile length claims must
// error out, never panic or over-allocate.
func TestDecodeRejectsCorruption(t *testing.T) {
	enc := AppendSnapshot(nil, sampleSnapshot())
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeSnapshot(enc[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, _, err := DecodeSnapshot(bad); err == nil {
		t.Fatalf("bad magic accepted")
	}
	if _, err := CellsToBytes([]int64{1 << 40, 0}); err == nil {
		t.Fatalf("hostile cell length accepted")
	}
	if _, err := CellsToBytes(nil); err == nil {
		t.Fatalf("empty cell stream accepted")
	}
}
