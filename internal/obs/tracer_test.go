package obs

import (
	"sync"
	"testing"
)

// TestTracerRecordSnapshot checks the basic contract: events come back in
// record order with their fields intact and the intern table resolving.
func TestTracerRecordSnapshot(t *testing.T) {
	tr := NewTracer(3, 128)
	if tr.Capacity() != 128 {
		t.Fatalf("capacity = %d, want 128", tr.Capacity())
	}
	locX := tr.Loc("x")
	locY := tr.Loc("y")
	if locX == locY {
		t.Fatalf("distinct locations interned to the same index %d", locX)
	}
	if got := tr.Loc("x"); got != locX {
		t.Fatalf("re-interning x: %d, want %d", got, locX)
	}
	tr.Record(EvWriteIssue, 2, 0, locX, 7, 3, 0)
	tr.Record(EvApply, 0, 1, locY, 9, 0, 0)
	tr.RecordLoc(EvAwaitEnd, 2, 1, "x", 7, 1234, 0)

	s := tr.Snapshot()
	if s.Node != 3 || s.Recorded != 3 || s.Dropped != 0 {
		t.Fatalf("snapshot header = %+v", s)
	}
	if len(s.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(s.Events))
	}
	for i, e := range s.Events {
		if e.Index != uint64(i) {
			t.Fatalf("event %d has index %d", i, e.Index)
		}
		if e.Time == 0 {
			t.Fatalf("event %d has zero time", i)
		}
	}
	e := s.Events[0]
	if e.Type != EvWriteIssue || e.Label != 2 || e.Seq != 7 || e.A != 3 || s.LocName(e.Loc) != "x" {
		t.Fatalf("event 0 = %+v", e)
	}
	if aw := s.Events[2]; aw.Type != EvAwaitEnd || aw.Peer != 1 || s.LocName(aw.Loc) != "x" {
		t.Fatalf("event 2 = %+v", aw)
	}
}

// TestTracerNil checks the off-by-default contract: every method of a nil
// tracer is a no-op.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Record(EvApply, 0, 0, 0, 0, 0, 0)
	tr.RecordLoc(EvApply, 0, 0, "x", 0, 0, 0)
	if tr.Loc("x") != NoLoc {
		t.Fatalf("nil tracer interned a location")
	}
	if tr.Recorded() != 0 || tr.Dropped() != 0 || tr.Snapshot() != nil {
		t.Fatalf("nil tracer has state")
	}
}

// TestTracerWraparound pins the ring's overwrite semantics: recording past
// capacity drops the oldest events, the drop counter says exactly how
// many, and the surviving events are the newest ones in order.
func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(0, 64)
	const total = 200
	for i := 0; i < total; i++ {
		tr.Record(EvApply, 0, 0, NoLoc, uint64(i), 0, 0)
	}
	s := tr.Snapshot()
	if s.Recorded != total {
		t.Fatalf("recorded = %d, want %d", s.Recorded, total)
	}
	if want := uint64(total - 64); s.Dropped != want {
		t.Fatalf("dropped = %d, want %d", s.Dropped, want)
	}
	if len(s.Events) != 64 {
		t.Fatalf("got %d events, want 64", len(s.Events))
	}
	for i, e := range s.Events {
		wantIdx := uint64(total - 64 + i)
		if e.Index != wantIdx || e.Seq != wantIdx {
			t.Fatalf("event %d = index %d seq %d, want %d", i, e.Index, e.Seq, wantIdx)
		}
	}
}

// TestTracerConcurrentSnapshot hammers the ring from many recorders while
// snapshotting: every decoded event must be internally consistent (the
// seqlock skips torn slots rather than exporting them). Run under -race
// this is also the data-race proof for the all-atomic slot encoding.
func TestTracerConcurrentSnapshot(t *testing.T) {
	tr := NewTracer(1, 256)
	const (
		writers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				seq := uint64(w)<<32 | uint64(i)
				// A and B carry copies of seq so a torn slot is detectable.
				tr.Record(EvApply, byte(w), uint16(w), NoLoc, seq, seq, seq)
			}
		}(w)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := tr.Snapshot()
			for _, e := range s.Events {
				if e.Seq != e.A || e.Seq != e.B {
					t.Errorf("torn event exported: %+v", e)
					return
				}
				if int(e.Label) != int(e.Peer) {
					t.Errorf("torn meta exported: %+v", e)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if got := tr.Recorded(); got != writers*perW {
		t.Fatalf("recorded = %d, want %d", got, writers*perW)
	}
}

// TestRecordAllocFree pins the hot-path contract: recording an event —
// including the interned-location lookup — allocates nothing.
func TestRecordAllocFree(t *testing.T) {
	tr := NewTracer(0, 1024)
	tr.Loc("warm")
	if n := testing.AllocsPerRun(500, func() {
		tr.Record(EvApply, 1, 2, 3, 4, 5, 6)
	}); n != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(500, func() {
		tr.RecordLoc(EvWriteIssue, 1, 2, "warm", 4, 5, 6)
	}); n != 0 {
		t.Fatalf("RecordLoc with a warm location allocates %.1f/op, want 0", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(500, func() {
		nilTr.RecordLoc(EvWriteIssue, 1, 2, "warm", 4, 5, 6)
	}); n != 0 {
		t.Fatalf("nil-tracer RecordLoc allocates %.1f/op, want 0", n)
	}
}

// TestInternConcurrent checks the copy-on-write intern table under
// concurrent insert and lookup (run with -race).
func TestInternConcurrent(t *testing.T) {
	tr := NewTracer(0, 64)
	var wg sync.WaitGroup
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Loc(names[i%len(names)])
			}
		}()
	}
	wg.Wait()
	seen := map[uint32]bool{}
	for _, n := range names {
		i := tr.Loc(n)
		if seen[i] {
			t.Fatalf("index %d assigned twice", i)
		}
		seen[i] = true
	}
	s := tr.Snapshot()
	if len(s.Locs) != len(names) {
		t.Fatalf("intern table has %d entries, want %d", len(s.Locs), len(names))
	}
}
