package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// The explainer answers "where did this write-visibility latency go": for
// each Await that matched a probed location, it walks the happens-before
// chain the trace recorded — write issue on the writer, outbox enqueue and
// flush toward the reader, receive, receive-order apply, causal
// delivery-group release, await wakeup — and attributes the end-to-end
// interval to the named segment ending at each chain point. The chain
// timestamps telescope, so a sample whose events all survived in the ring
// is attributed exactly 100%; when the ring wrapped over an interior
// event, its interval merges into the following segment (the attribution
// stays exact), and when the write-issue anchor itself is gone the sample
// is reported as incomplete rather than guessed at.

// Segment indices, in chain order. Each segment is the interval ending at
// the named chain point.
const (
	SegIssue   = iota // write issue → outbox enqueue (local issue work)
	SegOutbox         // enqueue → flush (batching / linger delay)
	SegWire           // flush → receive on the reader (encode, wire, inbox)
	SegApply          // receive → receive-order apply
	SegDepWait        // apply → causal delivery-group release
	SegWakeup         // release → await wakeup on the reader strand
	NumSegments
)

// SegmentNames names the chain segments in order.
var SegmentNames = [NumSegments]string{
	"issue", "outbox", "wire", "apply", "dep-wait", "wakeup",
}

// Sample is one explained write-visibility interval: an await on a probed
// location, matched to the write it observed.
type Sample struct {
	Tag    string
	Loc    string
	Writer int
	Reader int
	Seq    uint64
	// Total is awaitEnd − writeIssue; Segments telescope over it.
	Total    time.Duration
	Segments [NumSegments]time.Duration
	// Complete reports that both chain anchors (the write-issue event on
	// the writer and the await-end event on the reader) survived in their
	// rings. Incomplete samples carry only Total = 0.
	Complete bool
}

// Attributed is the summed segment time: equal to Total for complete
// samples by construction.
func (s *Sample) Attributed() time.Duration {
	var sum time.Duration
	for _, d := range s.Segments {
		sum += d
	}
	return sum
}

// Breakdown aggregates the samples of one tag (one run / label
// configuration).
type Breakdown struct {
	Tag        string
	Samples    int
	Incomplete int
	// MinAttribution is the minimum attributed fraction over complete
	// samples (1.0 when every chain telescoped fully).
	MinAttribution float64
	// TotalP50/P99 summarize the end-to-end interval; SegP50/SegP99 the
	// per-segment intervals.
	TotalP50, TotalP99 time.Duration
	SegP50, SegP99     [NumSegments]time.Duration
}

// Explanation is the full result: one breakdown per tag, in tag order,
// plus the raw samples.
type Explanation struct {
	Breakdowns []Breakdown
	SamplesOut []Sample
}

// Explain walks every await-end event on a location accepted by probeLoc
// and attributes its latency. Snapshots sharing a Tag are treated as one
// run; an empty probeLoc accepts every awaited location.
func Explain(snaps []*Snapshot, probeLoc func(string) bool) *Explanation {
	if probeLoc == nil {
		probeLoc = func(string) bool { return true }
	}
	byTag := map[string][]*Snapshot{}
	var tags []string
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if _, ok := byTag[s.Tag]; !ok {
			tags = append(tags, s.Tag)
		}
		byTag[s.Tag] = append(byTag[s.Tag], s)
	}
	sort.Strings(tags)

	out := &Explanation{}
	for _, tag := range tags {
		samples := explainRun(byTag[tag], probeLoc)
		out.SamplesOut = append(out.SamplesOut, samples...)
		out.Breakdowns = append(out.Breakdowns, summarize(tag, samples))
	}
	return out
}

// rangeEvent is a batch-shaped event covering seqs [First, Last]
// (inclusive; scoped placement leaves holes inside the range, which is
// why batch events carry the last seq explicitly rather than a count).
type rangeEvent struct {
	First, Last uint64
	Time        int64
}

// findRange returns the time of the earliest range covering seq, or 0.
// Ranges are scanned in record order, so the first hit is the earliest.
func findRange(rs []rangeEvent, seq uint64) int64 {
	for _, r := range rs {
		if r.First <= seq && seq <= r.Last {
			return r.Time
		}
	}
	return 0
}

type pairKey struct {
	node int
	peer uint16
	seq  uint64
}

type seqKey struct {
	node int
	seq  uint64
}

func explainRun(snaps []*Snapshot, probeLoc func(string) bool) []Sample {
	// Index the chain events. Writer side keyed by (writer, seq) or
	// (writer, dest, seq); reader side keyed by (reader, from, seq).
	issue := map[seqKey]int64{}
	enq := map[pairKey]int64{}
	flush := map[pairKey][]rangeEvent{}   // key.seq unused (0)
	recv := map[pairKey][]rangeEvent{}    // ranges from sender key.peer
	apply := map[pairKey]int64{}          //
	release := map[pairKey][]rangeEvent{} //
	type await struct {
		snap *Snapshot
		ev   Event
	}
	var awaits []await

	for _, s := range snaps {
		for _, e := range s.Events {
			switch e.Type {
			case EvWriteIssue:
				k := seqKey{s.Node, e.Seq}
				if _, ok := issue[k]; !ok {
					issue[k] = e.Time
				}
			case EvEnqueue:
				k := pairKey{s.Node, e.Peer, e.Seq}
				if _, ok := enq[k]; !ok {
					enq[k] = e.Time
				}
			case EvFlush:
				k := pairKey{s.Node, e.Peer, 0}
				flush[k] = append(flush[k], rangeEvent{e.Seq, e.A, e.Time})
			case EvRecv:
				k := pairKey{s.Node, e.Peer, 0}
				recv[k] = append(recv[k], rangeEvent{e.Seq, e.Seq, e.Time})
			case EvRecvBatch:
				k := pairKey{s.Node, e.Peer, 0}
				recv[k] = append(recv[k], rangeEvent{e.Seq, e.A, e.Time})
			case EvApply:
				k := pairKey{s.Node, e.Peer, e.Seq}
				if _, ok := apply[k]; !ok {
					apply[k] = e.Time
				}
			case EvGroupRelease:
				k := pairKey{s.Node, e.Peer, 0}
				release[k] = append(release[k], rangeEvent{e.Seq, e.A, e.Time})
			case EvAwaitEnd:
				if e.Seq == 0 {
					break // never anchored: no matched write to chain from
				}
				if loc := s.LocName(e.Loc); loc != "" && probeLoc(loc) {
					awaits = append(awaits, await{s, e})
				}
			}
		}
	}

	samples := make([]Sample, 0, len(awaits))
	for _, aw := range awaits {
		e := aw.ev
		writer := int(e.Peer)
		sm := Sample{
			Tag:    aw.snap.Tag,
			Loc:    aw.snap.LocName(e.Loc),
			Writer: writer,
			Reader: aw.snap.Node,
			Seq:    e.Seq,
		}
		t0, ok := issue[seqKey{writer, e.Seq}]
		if !ok {
			samples = append(samples, sm) // incomplete: issue anchor gone
			continue
		}
		reader := uint16(aw.snap.Node)
		// Chain points in order; zero = event missing (merged into the
		// next found segment).
		points := [NumSegments]int64{
			enq[pairKey{writer, reader, e.Seq}],
			findRange(flush[pairKey{writer, reader, 0}], e.Seq),
			findRange(recv[pairKey{aw.snap.Node, uint16(writer), 0}], e.Seq),
			apply[pairKey{aw.snap.Node, uint16(writer), e.Seq}],
			findRange(release[pairKey{aw.snap.Node, uint16(writer), 0}], e.Seq),
			e.Time,
		}
		sm.Complete = true
		sm.Total = time.Duration(e.Time - t0)
		if sm.Total < 0 {
			sm.Total = 0
		}
		prev := t0
		for i, pt := range points {
			if pt == 0 {
				continue // merged into the next segment
			}
			if pt < prev {
				pt = prev // clamp wall-clock jitter
			}
			if pt > e.Time {
				pt = e.Time
			}
			sm.Segments[i] = time.Duration(pt - prev)
			prev = pt
		}
		samples = append(samples, sm)
	}
	return samples
}

func summarize(tag string, samples []Sample) Breakdown {
	b := Breakdown{Tag: tag, Samples: len(samples), MinAttribution: 1}
	var totals []time.Duration
	var segs [NumSegments][]time.Duration
	for i := range samples {
		s := &samples[i]
		if !s.Complete {
			b.Incomplete++
			continue
		}
		totals = append(totals, s.Total)
		for j, d := range s.Segments {
			segs[j] = append(segs[j], d)
		}
		frac := 1.0
		if s.Total > 0 {
			frac = float64(s.Attributed()) / float64(s.Total)
		}
		if frac < b.MinAttribution {
			b.MinAttribution = frac
		}
	}
	if b.Samples == b.Incomplete && b.Samples > 0 {
		b.MinAttribution = 0
	}
	b.TotalP50, b.TotalP99 = quantiles(totals)
	for j := range segs {
		b.SegP50[j], b.SegP99[j] = quantiles(segs[j])
	}
	return b
}

// quantiles reports exact p50/p99 of the (small) sample set by sorting.
func quantiles(ds []time.Duration) (p50, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return at(0.50), at(0.99)
}

// WriteTable renders the per-tag segment breakdown as the fixed-width
// table `mixedtrace` prints and CI archives.
func (e *Explanation) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-28s %8s %6s %8s", "tag", "samples", "attr", "total")
	for _, n := range SegmentNames {
		fmt.Fprintf(w, " %16s", n)
	}
	fmt.Fprintln(w)
	for _, b := range e.Breakdowns {
		fmt.Fprintf(w, "%-28s %8d %5.1f%% %8s", b.Tag, b.Samples, b.MinAttribution*100,
			fmtDur(b.TotalP99))
		for j := range SegmentNames {
			fmt.Fprintf(w, " %7s/%8s", fmtDur(b.SegP50[j]), fmtDur(b.SegP99[j]))
		}
		fmt.Fprintln(w)
		if b.Incomplete > 0 {
			fmt.Fprintf(w, "%-28s %8d samples incomplete (ring wrapped over their chain anchors)\n",
				"", b.Incomplete)
		}
	}
	fmt.Fprintf(w, "(total column is p99 end-to-end; segment columns are p50/p99)\n")
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	}
}
