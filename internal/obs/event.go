// Package obs is the observability layer: a per-node, lock-free,
// fixed-capacity event tracer whose records carry enough logical metadata
// (sender, sequence number, batch ranges) that the cross-node
// happens-before edges of a run — write issue → outbox enqueue → flush →
// wire → apply → delivery-group release → await wakeup — can be
// reconstructed offline by matching events, plus the exporters that make
// the reconstruction usable: a Chrome trace-event (Perfetto-loadable)
// exporter, a causal-path latency explainer that attributes each
// write-visibility sample to named segments of that chain, and a unified
// metrics registry serving every subsystem's counters as one JSON
// snapshot.
//
// obs is a leaf package: the DSM, the sync managers, and the TCP
// transport all call into it, so it imports none of them. Everything a
// record carries is scalar; locations are interned to small indices so
// recording is allocation-free (see Tracer).
package obs

// EventType identifies what a trace event records. The comment on each
// type names the fields it populates beyond Node and Time.
type EventType uint8

// Event types. The write-visibility chain the explainer walks is, in
// order: EvWriteIssue → EvEnqueue → EvFlush → EvRecv/EvRecvBatch →
// EvApply → EvGroupRelease → EvAwaitEnd.
const (
	// EvNone marks an empty or torn ring slot; never exported.
	EvNone EventType = iota
	// EvWriteIssue: a local write was assigned its sequence number.
	// Loc, Seq, Label; A = destination count, B = the dsm.UpdateOp (OpSet
	// for plain writes, the Add variants for commutative counter updates;
	// 0 in traces recorded before the op was carried).
	EvWriteIssue
	// EvEnqueue: an update entered the outbox pending batch for Peer.
	// Peer, Seq, Loc; A = pending updates in that batch after the add.
	EvEnqueue
	// EvFlush: the pending batch for Peer was flushed to the transport.
	// Peer, Seq = first covered sequence number, A = last covered
	// sequence number (inclusive — under scoped placement the range has
	// holes, so a count would under-cover), B = update count.
	EvFlush
	// EvSend: a non-update protocol message was sent. Peer, A = kind.
	EvSend
	// EvRecv: a singleton update was received (before apply).
	// Peer = sender, Seq, Loc.
	EvRecv
	// EvRecvBatch: an update batch was received (before apply).
	// Peer = sender, Seq = first sequence number, A = last sequence
	// number (inclusive), B = update count.
	EvRecvBatch
	// EvApply: an update was applied to the receive-order (PRAM) view.
	// Peer = sender, Seq, Loc.
	EvApply
	// EvGroupRelease: a delivery group became causally applicable and was
	// applied to the causal view. Peer = sender, Seq = first sequence
	// number, A = last sequence number (inclusive), B = update count.
	EvGroupRelease
	// EvDepWaitBegin: a delivery group parked on unmet dependencies.
	// Peer = sender, Seq = FirstSeq.
	EvDepWaitBegin
	// EvDepWaitEnd: the parked group's dependencies were met.
	// Peer = sender, Seq = FirstSeq, A = parked nanoseconds.
	EvDepWaitEnd
	// EvAwaitBegin: Await(loc, v) started waiting. Loc, A = target value.
	EvAwaitBegin
	// EvAwaitEnd: Await matched. Loc, Label; Peer and Seq name the matched
	// write (the PRAM last-writer anchor at wakeup; zero Seq when the
	// location was never anchored); A = waited nanoseconds.
	EvAwaitEnd
	// EvFenceWait: a causal read blocked on the observation fence.
	// Loc, A = waited nanoseconds.
	EvFenceWait
	// EvInvalWait: a read blocked on an invalidation (demand-driven lock
	// propagation). Loc, Peer = writer, Seq, A = waited nanoseconds.
	EvInvalWait
	// EvWaitCounts: WaitReceived or WaitCausalApplied returned.
	// Peer, Seq = target count, A = waited nanoseconds, B = 1 for the
	// causal variant.
	EvWaitCounts
	// EvSCRequest: an SC round trip to the location's owner began.
	// Loc, Peer = owner, Seq = request ID.
	EvSCRequest
	// EvSCReply: the SC round trip completed. Loc, Peer = owner,
	// Seq = request ID, A = blocked nanoseconds.
	EvSCReply
	// EvLockAcquire: a lock grant arrived. Loc = lock name,
	// A = waited nanoseconds, B = 1 for write mode.
	EvLockAcquire
	// EvLockRelease: a lock was released. Loc = lock name,
	// A = release-protocol nanoseconds, B = 1 for write mode.
	EvLockRelease
	// EvBarrierEnter: a barrier arrival was announced. Loc = group,
	// Seq = episode.
	EvBarrierEnter
	// EvBarrierExit: the barrier released and all pre-arrival updates were
	// applied. Loc = group, Seq = episode, A = waited nanoseconds.
	EvBarrierExit
	// EvReconnect: a TCP peer link (re)established and replayed its
	// unacked tail. Peer, A = frames replayed.
	EvReconnect
	// EvFramePark: a TCP frame was parked during reconnect because its
	// sequence range was still in flight. Peer, Seq = frame seq,
	// A = held frames after parking.
	EvFramePark

	evTypeCount // sentinel; keep last
)

var evNames = [evTypeCount]string{
	EvNone:         "none",
	EvWriteIssue:   "write-issue",
	EvEnqueue:      "enqueue",
	EvFlush:        "flush",
	EvSend:         "send",
	EvRecv:         "recv",
	EvRecvBatch:    "recv-batch",
	EvApply:        "apply",
	EvGroupRelease: "group-release",
	EvDepWaitBegin: "dep-wait-begin",
	EvDepWaitEnd:   "dep-wait-end",
	EvAwaitBegin:   "await-begin",
	EvAwaitEnd:     "await-end",
	EvFenceWait:    "fence-wait",
	EvInvalWait:    "inval-wait",
	EvWaitCounts:   "wait-counts",
	EvSCRequest:    "sc-request",
	EvSCReply:      "sc-reply",
	EvLockAcquire:  "lock-acquire",
	EvLockRelease:  "lock-release",
	EvBarrierEnter: "barrier-enter",
	EvBarrierExit:  "barrier-exit",
	EvReconnect:    "reconnect",
	EvFramePark:    "frame-park",
}

// String names the event type the way the exporters do.
func (t EventType) String() string {
	if int(t) < len(evNames) && evNames[t] != "" {
		return evNames[t]
	}
	return "event#" + itoa(int(t))
}

// itoa is strconv.Itoa for small non-negative ints without importing
// strconv into every caller's inlining budget.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// NoLoc is the Loc value of an event that names no location.
const NoLoc = ^uint32(0)

// Event is one decoded trace record. Index is the event's position in its
// node's record stream (0-based, monotone; gaps mean the ring wrapped over
// the missing records). Loc indexes Snapshot.Locs, or NoLoc.
type Event struct {
	Index uint64
	Time  int64 // wall clock, UnixNano
	Type  EventType
	Label uint8
	Peer  uint16
	Loc   uint32
	Seq   uint64
	A, B  uint64
}

// Snapshot is the drained state of one node's ring: the surviving events
// in record order plus the intern table resolving their Loc indices. Tag
// is assigned by the collector to name the run/configuration the node
// belonged to (e.g. an S1 cell like "causal-scoped/r4000"); the explainer
// groups by it.
type Snapshot struct {
	Tag      string
	Node     int
	Capacity int
	// Recorded is the total number of events ever recorded; Dropped is how
	// many of them the ring had overwritten by snapshot time. Events whose
	// Index is below Dropped may still appear if they were read before
	// being overwritten.
	Recorded uint64
	Dropped  uint64
	Locs     []string
	Events   []Event
}

// LocName resolves an event's location index against the snapshot's
// intern table.
func (s *Snapshot) LocName(loc uint32) string {
	if loc == NoLoc || int(loc) >= len(s.Locs) {
		return ""
	}
	return s.Locs[loc]
}
