package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// slotWords is the per-slot layout: a begin stamp, five payload words, an
// end stamp, and one pad word so a slot is exactly one 64-byte cache line.
//
//	w0  begin stamp = event index + 1 (0 = never written)
//	w1  wall time (UnixNano)
//	w2  packed meta: type | label<<8 | peer<<16 | loc<<32
//	w3  seq
//	w4  A
//	w5  B
//	w6  end stamp (same value as w0 once the record is complete)
//	w7  pad
const slotWords = 8

type slot struct {
	w [slotWords]atomic.Uint64
}

// internTable is the copy-on-write location table: reads go through an
// atomic pointer load plus a map lookup (no lock, no allocation); inserts
// — once per distinct location name — copy the table under the mutex.
type internTable struct {
	idx  map[string]uint32
	strs []string
}

// Tracer is a per-node, lock-free, fixed-capacity event ring. Record
// claims a slot with one atomic increment of the cursor and fills it with
// plain atomic stores; when the ring is full the oldest record is
// overwritten, so tracing never blocks and never allocates on the hot
// path. A nil *Tracer is valid and records nothing, which is how tracing
// stays compiled-in but off by default: call sites guard with a nil check
// that the branch predictor eats.
//
// Each slot is a seqlock: the writer publishes the begin stamp (event
// index + 1) before the payload and the end stamp after it, and Snapshot
// accepts a slot only when end == begin. A concurrent overwrite — even
// the pathological lapped-writer race where two writers a full ring apart
// interleave on one slot — leaves the stamps unequal at read time, so a
// torn payload is skipped rather than exported: every writer stores its
// begin stamp before touching the payload, and the reader loads the begin
// stamp last.
//
// Tracer acquires no lock while recording, so events may be recorded
// under any rung of the DSM's documented lock order (clockMu → shard.mu →
// outboxMu) without extending it.
type Tracer struct {
	node uint16
	mask uint64

	cursor atomic.Uint64
	slots  []slot

	locs   atomic.Pointer[internTable]
	locsMu sync.Mutex
}

// NewTracer returns a tracer for the given node with the given ring
// capacity, rounded up to a power of two (minimum 64).
func NewTracer(node, capacity int) *Tracer {
	c := 64
	for c < capacity {
		c <<= 1
	}
	t := &Tracer{node: uint16(node), mask: uint64(c - 1), slots: make([]slot, c)}
	t.locs.Store(&internTable{idx: map[string]uint32{}})
	return t
}

// Node returns the node ID the tracer was built for.
func (t *Tracer) Node() int { return int(t.node) }

// Capacity returns the ring capacity.
func (t *Tracer) Capacity() int { return len(t.slots) }

// Loc interns a location (or lock/barrier) name and returns its index.
// The fast path — every name after its first use — is an atomic pointer
// load and a map lookup: lock-free and allocation-free. On a nil tracer
// it returns NoLoc.
func (t *Tracer) Loc(name string) uint32 {
	if t == nil {
		return NoLoc
	}
	if i, ok := t.locs.Load().idx[name]; ok {
		return i
	}
	return t.locSlow(name)
}

func (t *Tracer) locSlow(name string) uint32 {
	t.locsMu.Lock()
	defer t.locsMu.Unlock()
	old := t.locs.Load()
	if i, ok := old.idx[name]; ok {
		return i
	}
	next := &internTable{
		idx:  make(map[string]uint32, len(old.idx)+1),
		strs: make([]string, len(old.strs), len(old.strs)+1),
	}
	for k, v := range old.idx {
		next.idx[k] = v
	}
	copy(next.strs, old.strs)
	i := uint32(len(next.strs))
	next.idx[name] = i
	next.strs = append(next.strs, name)
	t.locs.Store(next)
	return i
}

// Record appends one event. Safe for any number of concurrent callers;
// never blocks, never allocates. A nil receiver records nothing.
func (t *Tracer) Record(typ EventType, label uint8, peer uint16, loc uint32, seq, a, b uint64) {
	if t == nil {
		return
	}
	now := uint64(time.Now().UnixNano())
	i := t.cursor.Add(1) - 1
	s := &t.slots[i&t.mask]
	gen := i + 1
	s.w[0].Store(gen)
	s.w[1].Store(now)
	s.w[2].Store(uint64(typ) | uint64(label)<<8 | uint64(peer)<<16 | uint64(loc)<<32)
	s.w[3].Store(seq)
	s.w[4].Store(a)
	s.w[5].Store(b)
	s.w[6].Store(gen)
}

// RecordLoc is Record for call sites holding a location name rather than
// an interned index.
func (t *Tracer) RecordLoc(typ EventType, label uint8, peer uint16, loc string, seq, a, b uint64) {
	if t == nil {
		return
	}
	t.Record(typ, label, peer, t.Loc(loc), seq, a, b)
}

// Recorded returns the total number of events recorded so far.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.cursor.Load()
}

// Dropped returns how many recorded events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	if cur := t.cursor.Load(); cur > uint64(len(t.slots)) {
		return cur - uint64(len(t.slots))
	}
	return 0
}

// Snapshot drains the ring: every slot whose stamps agree is decoded, and
// the result is sorted into record order. Safe concurrently with Record —
// slots being overwritten mid-read are skipped, not torn. A nil tracer
// snapshots to nil.
func (t *Tracer) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	tab := t.locs.Load()
	snap := &Snapshot{
		Node:     int(t.node),
		Capacity: len(t.slots),
		Recorded: t.cursor.Load(),
		Dropped:  t.Dropped(),
		Locs:     append([]string(nil), tab.strs...),
	}
	snap.Events = make([]Event, 0, len(t.slots))
	for j := range t.slots {
		s := &t.slots[j]
		end := s.w[6].Load()
		if end == 0 {
			continue
		}
		var w [5]uint64
		for k := 0; k < 5; k++ {
			w[k] = s.w[k+1].Load()
		}
		if s.w[0].Load() != end {
			continue // mid-overwrite: skip the torn slot
		}
		meta := w[1]
		snap.Events = append(snap.Events, Event{
			Index: end - 1,
			Time:  int64(w[0]),
			Type:  EventType(meta & 0xff),
			Label: uint8(meta >> 8),
			Peer:  uint16(meta >> 16),
			Loc:   uint32(meta >> 32),
			Seq:   w[2],
			A:     w[3],
			B:     w[4],
		})
	}
	sortEvents(snap.Events)
	return snap
}

// sortEvents orders by Index (insertion sort run over an almost-sorted
// ring read: the ring is index order rotated once, so this is O(n) in
// practice).
func sortEvents(ev []Event) {
	// Find the rotation point and rotate, then fix stragglers.
	rot := 0
	for i := 1; i < len(ev); i++ {
		if ev[i].Index < ev[i-1].Index {
			rot = i
			break
		}
	}
	if rot > 0 {
		tmp := make([]Event, 0, len(ev))
		tmp = append(tmp, ev[rot:]...)
		tmp = append(tmp, ev[:rot]...)
		copy(ev, tmp)
	}
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].Index < ev[j-1].Index; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}
