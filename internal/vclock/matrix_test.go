package vclock

import "testing"

func TestMatrixRowsIndependent(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 5)
	m.Row(1).Set(2, 7)
	if m.Get(0, 1) != 5 || m.Get(1, 2) != 7 {
		t.Fatalf("entries lost: %v", m)
	}
	if m.Get(1, 1) != 0 || m.Get(2, 2) != 0 {
		t.Fatalf("writes leaked across rows: %v", m)
	}
}

func TestMatrixCloneIsDeep(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 3)
	c := m.Clone()
	c.Set(0, 0, 99)
	c.Set(1, 1, 4)
	if m.Get(0, 0) != 3 || m.Get(1, 1) != 0 {
		t.Fatalf("clone aliased original: %v", m)
	}
	if Matrix(nil).Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

func TestMatrixMerge(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 1)
	b := NewMatrix(2)
	b.Set(0, 0, 2)
	b.Set(0, 1, 9)
	a.Merge(b)
	if a.Get(0, 0) != 4 || a.Get(0, 1) != 9 || a.Get(1, 1) != 1 {
		t.Fatalf("merge wrong: %v", a)
	}
	// Mismatched sizes merge only the shared prefix, never panic.
	a.Merge(NewMatrix(5))
	a.Merge(nil)
}

func TestMatrixEncodeDecodeRoundTrip(t *testing.T) {
	m := NewMatrix(3)
	for p := 0; p < 3; p++ {
		for k := 0; k < 3; k++ {
			m.Set(p, k, uint64(10*p+k))
		}
	}
	enc := m.Encode(nil)
	if len(enc) != m.EncodedSize() {
		t.Fatalf("encoded %d bytes, want %d", len(enc), m.EncodedSize())
	}
	got, used, err := DecodeMatrix(enc, 3)
	if err != nil || used != len(enc) {
		t.Fatalf("decode: %v (used %d)", err, used)
	}
	for p := 0; p < 3; p++ {
		for k := 0; k < 3; k++ {
			if got.Get(p, k) != m.Get(p, k) {
				t.Fatalf("entry [%d][%d] = %d, want %d", p, k, got.Get(p, k), m.Get(p, k))
			}
		}
	}
	if _, _, err := DecodeMatrix(enc[:10], 3); err == nil {
		t.Fatal("short decode succeeded")
	}
}
