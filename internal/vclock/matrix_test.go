package vclock

import "testing"

func TestMatrixRowsIndependent(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 5)
	m.Row(1).Set(2, 7)
	if m.Get(0, 1) != 5 || m.Get(1, 2) != 7 {
		t.Fatalf("entries lost: %v", m)
	}
	if m.Get(1, 1) != 0 || m.Get(2, 2) != 0 {
		t.Fatalf("writes leaked across rows: %v", m)
	}
}

func TestMatrixCloneIsDeep(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 3)
	c := m.Clone()
	c.Set(0, 0, 99)
	c.Set(1, 1, 4)
	if m.Get(0, 0) != 3 || m.Get(1, 1) != 0 {
		t.Fatalf("clone aliased original: %v", m)
	}
	if Matrix(nil).Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
}

func TestMatrixMerge(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 1)
	b := NewMatrix(2)
	b.Set(0, 0, 2)
	b.Set(0, 1, 9)
	a.Merge(b)
	if a.Get(0, 0) != 4 || a.Get(0, 1) != 9 || a.Get(1, 1) != 1 {
		t.Fatalf("merge wrong: %v", a)
	}
	// Mismatched sizes merge only the shared prefix, never panic.
	a.Merge(NewMatrix(5))
	a.Merge(nil)
}

func TestMatrixEncodeDecodeRoundTrip(t *testing.T) {
	m := NewMatrix(3)
	for p := 0; p < 3; p++ {
		for k := 0; k < 3; k++ {
			m.Set(p, k, uint64(10*p+k))
		}
	}
	enc := m.Encode(nil)
	if len(enc) != m.EncodedSize() {
		t.Fatalf("encoded %d bytes, want %d", len(enc), m.EncodedSize())
	}
	got, used, err := DecodeMatrix(enc, 3)
	if err != nil || used != len(enc) {
		t.Fatalf("decode: %v (used %d)", err, used)
	}
	for p := 0; p < 3; p++ {
		for k := 0; k < 3; k++ {
			if got.Get(p, k) != m.Get(p, k) {
				t.Fatalf("entry [%d][%d] = %d, want %d", p, k, got.Get(p, k), m.Get(p, k))
			}
		}
	}
	if _, _, err := DecodeMatrix(enc[:10], 3); err == nil {
		t.Fatal("short decode succeeded")
	}
}

func TestMatrixActive(t *testing.T) {
	m := NewMatrix(6)
	m.Set(1, 4, 7) // row 1 and column 4 become active
	got := m.Active()
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("Active = %v, want [1 4]", got)
	}
	if a := NewMatrix(6).Active(); len(a) != 0 {
		t.Fatalf("zero matrix has active indices %v", a)
	}
	if a := Matrix(nil).Active(); len(a) != 0 {
		t.Fatalf("nil matrix has active indices %v", a)
	}
}

func TestMatrixEncodeActiveSizeIgnoresIdlePeers(t *testing.T) {
	// The same three-peer interaction embedded in clusters of growing size
	// must encode to the same number of bytes: idle rows and columns cost
	// nothing on the wire.
	sizes := []int{4, 16, 64, 256}
	var first []byte
	for _, n := range sizes {
		m := NewMatrix(n)
		m.Set(0, 2, 5)
		m.Set(2, 3, 1)
		m.Set(3, 0, 9)
		enc := m.EncodeActive(nil)
		if len(enc) != m.ActiveEncodedSize() {
			t.Fatalf("n=%d: encoded %d bytes, ActiveEncodedSize says %d", n, len(enc), m.ActiveEncodedSize())
		}
		if first == nil {
			first = enc
		} else if len(enc) != len(first) {
			t.Fatalf("n=%d: sparse encoding is %d bytes, n=%d was %d — size must not grow with idle peers",
				n, len(enc), sizes[0], len(first))
		}
	}
	// 3 active indices: u32 count + 3 ids + 3x3 submatrix.
	if want := 4 + 3*4 + 9*8; len(first) != want {
		t.Fatalf("sparse encoding is %d bytes, want %d", len(first), want)
	}
}
