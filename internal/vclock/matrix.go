package vclock

import (
	"encoding/binary"
	"fmt"
)

// Matrix is an n-by-n matrix clock, the dependency summary causal delivery
// needs under partial replication. Row p is a vector clock about process p:
// in the DSM's usage, Matrix[p][k] is the highest per-sender sequence number
// of an update from process k *addressed to* process p that the matrix's
// owner (transitively) knows about.
//
// A plain vector clock cannot express causal dependencies when updates are
// scoped to subsets of processes: component k would count k's updates, but a
// receiver that is not in the scope of some of them can never apply those,
// so a "wait until applied >= ts[k]" condition either deadlocks or, if
// holes are skipped, silently drops transitive dependencies that flow
// through third processes. The matrix keeps one row per destination, so the
// wait condition shipped to p mentions only updates p actually receives.
//
// Rows are merged componentwise (entries are monotone: per-sender sequence
// numbers only grow), so matrices learned from different peers compose with
// Merge exactly like vector clocks do.
type Matrix []VC

// NewMatrix returns a zeroed n-by-n matrix clock.
func NewMatrix(n int) Matrix {
	m := make(Matrix, n)
	backing := make(VC, n*n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

// Len returns the number of rows (and columns).
func (m Matrix) Len() int { return len(m) }

// Row returns row p: the vector clock about process p. The returned slice
// aliases the matrix.
func (m Matrix) Row(p int) VC { return m[p] }

// Get returns entry [p][k].
func (m Matrix) Get(p, k int) uint64 { return m[p][k] }

// Set assigns entry [p][k].
func (m Matrix) Set(p, k int, v uint64) { m[p][k] = v }

// Clone returns an independent copy of m.
func (m Matrix) Clone() Matrix {
	if m == nil {
		return nil
	}
	out := NewMatrix(len(m))
	for i, row := range m {
		copy(out[i], row)
	}
	return out
}

// Merge raises every entry of m to the componentwise maximum of m and other.
// Matrices of different sizes do not merge (the receiver validates sizes
// before trusting a decoded matrix); Merge ignores rows and columns beyond
// either operand's bounds.
func (m Matrix) Merge(other Matrix) {
	for i := 0; i < len(m) && i < len(other); i++ {
		row, src := m[i], other[i]
		for k := 0; k < len(row) && k < len(src); k++ {
			if src[k] > row[k] {
				row[k] = src[k]
			}
		}
	}
}

// EncodedSize returns the number of bytes Encode produces for m.
func (m Matrix) EncodedSize() int { return 8 * len(m) * len(m) }

// Active returns, in ascending order, the indices whose row or column holds
// a nonzero entry: the processes that participate in the dependencies m
// records. In a long-running system most peers are idle with respect to any
// one scope, so the active set is how the wire encoding avoids shipping
// (and the receiver avoids re-learning) quadratically many zeroes.
func (m Matrix) Active() []int {
	var out []int
	for i := range m {
		for k := range m {
			if m[i][k] != 0 || m[k][i] != 0 {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// ActiveEncodedSize returns the number of bytes EncodeActive produces for m.
func (m Matrix) ActiveEncodedSize() int {
	n := len(m.Active())
	return 4 + 4*n + 8*n*n
}

// EncodeActive appends the sparse encoding of m — the active index list
// followed by the row-major submatrix over those indices — to dst:
//
//	u32 nAct | nAct*u32 ids | nAct*nAct*u64 sub
//
// Entries outside the active rows and columns are zero by construction, so
// the encoding is lossless; its size depends only on how many processes
// participate, not on the matrix dimension.
func (m Matrix) EncodeActive(dst []byte) []byte {
	ids := m.Active()
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint32(dst, uint32(id))
	}
	for _, i := range ids {
		for _, k := range ids {
			dst = binary.BigEndian.AppendUint64(dst, m[i][k])
		}
	}
	return dst
}

// Encode appends a fixed-width big-endian row-major encoding of m to dst and
// returns the extended slice.
func (m Matrix) Encode(dst []byte) []byte {
	for _, row := range m {
		dst = row.Encode(dst)
	}
	return dst
}

// DecodeMatrix parses an n-by-n matrix from src. It returns the matrix and
// the number of bytes consumed.
func DecodeMatrix(src []byte, n int) (Matrix, int, error) {
	need := 8 * n * n
	if n < 0 || len(src) < need {
		return nil, 0, fmt.Errorf("vclock: decode %dx%d matrix from %d bytes: %w",
			n, n, len(src), ErrSizeMismatch)
	}
	m := NewMatrix(n)
	off := 0
	for i := range m {
		for k := range m[i] {
			m[i][k] = binary.BigEndian.Uint64(src[off:])
			off += 8
		}
	}
	return m, need, nil
}
