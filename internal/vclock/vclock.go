// Package vclock implements fixed-width vector clocks.
//
// A vector clock timestamps events in a distributed computation so that the
// happens-before relation between two events can be recovered by comparing
// their timestamps componentwise. The mixed-consistency runtime
// (internal/dsm) attaches a vector clock to every update message and applies
// updates to the causal view only when all causally preceding updates have
// been applied, exactly as sketched in Section 6 of the paper.
//
// Clocks in this package have a fixed number of components, one per process,
// chosen at creation time. All operations treat component i as the count of
// relevant events issued by process i.
package vclock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Ordering is the result of comparing two vector clocks.
type Ordering int

// The four possible relations between two vector clocks.
const (
	// Equal means the clocks are identical in every component.
	Equal Ordering = iota + 1
	// Before means the receiver strictly happens-before the argument.
	Before
	// After means the argument strictly happens-before the receiver.
	After
	// Concurrent means neither clock dominates the other.
	Concurrent
)

// String returns a human-readable name for the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return "ordering(" + strconv.Itoa(int(o)) + ")"
	}
}

// ErrSizeMismatch is returned by Decode when the encoded clock does not have
// the expected number of components.
var ErrSizeMismatch = errors.New("vclock: size mismatch")

// VC is a vector clock with one component per process. The zero-length VC is
// valid and compares Equal to any other zero-length VC.
type VC []uint64

// New returns a zeroed vector clock with n components.
func New(n int) VC {
	return make(VC, n)
}

// Len returns the number of components.
func (v VC) Len() int { return len(v) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	if v == nil {
		return nil
	}
	out := make(VC, len(v))
	copy(out, v)
	return out
}

// Tick increments the component belonging to process p and returns the new
// value of that component.
func (v VC) Tick(p int) uint64 {
	v[p]++
	return v[p]
}

// Get returns component p.
func (v VC) Get(p int) uint64 { return v[p] }

// Set assigns component p.
func (v VC) Set(p int, val uint64) { v[p] = val }

// Merge sets every component of v to the maximum of v and other. The clocks
// must have the same length.
func (v VC) Merge(other VC) {
	for i, c := range other {
		if c > v[i] {
			v[i] = c
		}
	}
}

// Compare reports the relation between v and other. Clocks of different
// lengths are never related; Compare reports Concurrent for them.
func (v VC) Compare(other VC) Ordering {
	if len(v) != len(other) {
		return Concurrent
	}
	less, greater := false, false
	for i := range v {
		switch {
		case v[i] < other[i]:
			less = true
		case v[i] > other[i]:
			greater = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// HappensBefore reports whether v strictly happens-before other.
func (v VC) HappensBefore(other VC) bool {
	return v.Compare(other) == Before
}

// Dominates reports whether v >= other in every component.
func (v VC) Dominates(other VC) bool {
	o := v.Compare(other)
	return o == After || o == Equal
}

// DeliverableAfter reports whether an update stamped ts, sent by process
// from, is causally deliverable at a replica whose applied-state clock is v.
// The standard causal-broadcast condition: ts[from] == v[from]+1 and
// ts[k] <= v[k] for all k != from.
func DeliverableAfter(v, ts VC, from int) bool {
	if len(v) != len(ts) {
		return false
	}
	for k := range ts {
		if k == from {
			if ts[k] != v[k]+1 {
				return false
			}
			continue
		}
		if ts[k] > v[k] {
			return false
		}
	}
	return true
}

// String renders the clock as "[c0 c1 ...]".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(c, 10))
	}
	b.WriteByte(']')
	return b.String()
}

// EncodedSize returns the number of bytes Encode produces for v.
func (v VC) EncodedSize() int { return 8 * len(v) }

// Encode appends a fixed-width big-endian encoding of v to dst and returns
// the extended slice.
func (v VC) Encode(dst []byte) []byte {
	for _, c := range v {
		dst = binary.BigEndian.AppendUint64(dst, c)
	}
	return dst
}

// Decode parses a clock with n components from src. It returns the clock and
// the number of bytes consumed.
func Decode(src []byte, n int) (VC, int, error) {
	need := 8 * n
	if len(src) < need {
		return nil, 0, fmt.Errorf("vclock: decode %d components from %d bytes: %w", n, len(src), ErrSizeMismatch)
	}
	out := make(VC, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint64(src[8*i:])
	}
	return out, need, nil
}

// Max returns a new clock that is the componentwise maximum of a and b.
// The clocks must have the same length.
func Max(a, b VC) VC {
	out := a.Clone()
	out.Merge(b)
	return out
}

// Sum returns the total number of events recorded in the clock. It is useful
// as a cheap monotone progress measure in tests.
func (v VC) Sum() uint64 {
	var total uint64
	for _, c := range v {
		total += c
	}
	return total
}
