package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(4)
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
	for i := 0; i < 4; i++ {
		if v.Get(i) != 0 {
			t.Errorf("component %d = %d, want 0", i, v.Get(i))
		}
	}
}

func TestTick(t *testing.T) {
	v := New(3)
	if got := v.Tick(1); got != 1 {
		t.Fatalf("first Tick = %d, want 1", got)
	}
	if got := v.Tick(1); got != 2 {
		t.Fatalf("second Tick = %d, want 2", got)
	}
	if v.Get(0) != 0 || v.Get(2) != 0 {
		t.Errorf("Tick modified other components: %v", v)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := VC{1, 2, 3}
	c := v.Clone()
	c.Tick(0)
	if v[0] != 1 {
		t.Errorf("Clone aliases original: %v", v)
	}
	if got := c[0]; got != 2 {
		t.Errorf("clone component = %d, want 2", got)
	}
}

func TestCloneNil(t *testing.T) {
	var v VC
	if c := v.Clone(); c != nil {
		t.Errorf("Clone(nil) = %v, want nil", c)
	}
}

func TestCompareTable(t *testing.T) {
	tests := []struct {
		name string
		a, b VC
		want Ordering
	}{
		{"equal empty", VC{}, VC{}, Equal},
		{"equal", VC{1, 2}, VC{1, 2}, Equal},
		{"before", VC{1, 2}, VC{1, 3}, Before},
		{"before all", VC{0, 0}, VC{1, 1}, Before},
		{"after", VC{2, 2}, VC{1, 2}, After},
		{"concurrent", VC{1, 0}, VC{0, 1}, Concurrent},
		{"length mismatch", VC{1}, VC{1, 0}, Concurrent},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	a, b := VC{1, 5, 2}, VC{2, 5, 2}
	if a.Compare(b) != Before || b.Compare(a) != After {
		t.Errorf("antisymmetry violated: %v vs %v", a.Compare(b), b.Compare(a))
	}
}

func TestHappensBefore(t *testing.T) {
	if !(VC{0, 1}).HappensBefore(VC{1, 1}) {
		t.Error("expected happens-before")
	}
	if (VC{1, 1}).HappensBefore(VC{1, 1}) {
		t.Error("equal clocks must not happen-before")
	}
}

func TestDominates(t *testing.T) {
	if !(VC{1, 1}).Dominates(VC{1, 1}) {
		t.Error("clock must dominate itself")
	}
	if !(VC{2, 1}).Dominates(VC{1, 1}) {
		t.Error("strictly larger clock must dominate")
	}
	if (VC{2, 0}).Dominates(VC{1, 1}) {
		t.Error("concurrent clock must not dominate")
	}
}

func TestMerge(t *testing.T) {
	a, b := VC{1, 5, 0}, VC{3, 2, 0}
	a.Merge(b)
	want := VC{3, 5, 0}
	if a.Compare(want) != Equal {
		t.Errorf("Merge = %v, want %v", a, want)
	}
}

func TestMaxDoesNotMutate(t *testing.T) {
	a, b := VC{1, 0}, VC{0, 1}
	m := Max(a, b)
	if m.Compare(VC{1, 1}) != Equal {
		t.Errorf("Max = %v, want [1 1]", m)
	}
	if a.Compare(VC{1, 0}) != Equal || b.Compare(VC{0, 1}) != Equal {
		t.Errorf("Max mutated inputs: %v %v", a, b)
	}
}

func TestDeliverableAfter(t *testing.T) {
	tests := []struct {
		name  string
		state VC
		ts    VC
		from  int
		want  bool
	}{
		{"next in sequence", VC{0, 0}, VC{1, 0}, 0, true},
		{"gap from sender", VC{0, 0}, VC{2, 0}, 0, false},
		{"duplicate", VC{1, 0}, VC{1, 0}, 0, false},
		{"missing dependency", VC{0, 0}, VC{1, 1}, 0, false},
		{"dependency satisfied", VC{0, 1}, VC{1, 1}, 0, true},
		{"length mismatch", VC{0}, VC{1, 0}, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DeliverableAfter(tt.state, tt.ts, tt.from); got != tt.want {
				t.Errorf("DeliverableAfter(%v, %v, %d) = %v, want %v",
					tt.state, tt.ts, tt.from, got, tt.want)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := VC{1, 0, 42, 1 << 40}
	buf := v.Encode(nil)
	if len(buf) != v.EncodedSize() {
		t.Fatalf("encoded size = %d, want %d", len(buf), v.EncodedSize())
	}
	got, n, err := Decode(buf, 4)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d bytes, want %d", n, len(buf))
	}
	if got.Compare(v) != Equal {
		t.Errorf("round trip = %v, want %v", got, v)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, _, err := Decode(make([]byte, 7), 1); err == nil {
		t.Fatal("expected error for short buffer")
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent",
	} {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
	if got := Ordering(99).String(); got != "ordering(99)" {
		t.Errorf("unknown ordering String = %q", got)
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 0, 7}).String(); got != "[1 0 7]" {
		t.Errorf("String = %q, want %q", got, "[1 0 7]")
	}
}

func TestSum(t *testing.T) {
	if got := (VC{1, 2, 3}).Sum(); got != 6 {
		t.Errorf("Sum = %d, want 6", got)
	}
}

// randomVC builds a quick-check generator for small clocks.
func randomVC(r *rand.Rand, n int) VC {
	v := New(n)
	for i := range v {
		v[i] = uint64(r.Intn(5))
	}
	return v
}

func TestQuickCompareConsistency(t *testing.T) {
	// Compare must be antisymmetric, and Merge must dominate both inputs.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r, 4), randomVC(r, 4)
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Equal:
			if ba != Equal {
				return false
			}
		case Before:
			if ba != After {
				return false
			}
		case After:
			if ba != Before {
				return false
			}
		case Concurrent:
			if ba != Concurrent {
				return false
			}
		}
		m := Max(a, b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomVC(r, 3), randomVC(r, 3), randomVC(r, 3)
		if a.Compare(b) == Before && b.Compare(c) == Before {
			return a.Compare(c) == Before
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		v := randomVC(r, n)
		got, used, err := Decode(v.Encode(nil), n)
		return err == nil && used == 8*n && got.Compare(v) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompare(b *testing.B) {
	x := VC{1, 2, 3, 4, 5, 6, 7, 8}
	y := VC{1, 2, 3, 4, 5, 6, 7, 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Compare(y)
	}
}

func BenchmarkMerge(b *testing.B) {
	x := VC{1, 2, 3, 4, 5, 6, 7, 8}
	y := VC{8, 7, 6, 5, 4, 3, 2, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Merge(y)
	}
}

func BenchmarkDeliverableAfter(b *testing.B) {
	state := VC{5, 5, 5, 5}
	ts := VC{6, 5, 5, 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DeliverableAfter(state, ts, 0)
	}
}

func BenchmarkEncode(b *testing.B) {
	v := VC{1, 2, 3, 4, 5, 6, 7, 8}
	buf := make([]byte, 0, v.EncodedSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = v.Encode(buf[:0])
	}
}
