package core

import (
	"fmt"

	"mixedmem/internal/dsm"
	"mixedmem/internal/obs"
	"mixedmem/internal/syncmgr"
	"mixedmem/internal/transport"
	"mixedmem/internal/transport/tcp"
)

// This file wires the subsystem counters into the unified metrics registry
// (internal/obs). obs is a leaf package that knows nothing about dsm,
// network, or syncmgr, so the conversions live here with the package that
// already depends on all of them.

// MemMetricsOf converts the memory layer's counters into the registry's
// snapshot shape. The per-cause blocked map carries the exact partition of
// Stats.Blocked (see the dsm regression test pinning that the four causes
// sum to the aggregate).
func MemMetricsOf(s dsm.Stats) obs.MemMetrics {
	return obs.MemMetrics{
		Writes:      s.Writes,
		PRAMReads:   s.PRAMReads,
		CausalReads: s.CausalReads,
		SlowReads:   s.SlowReads,
		SCReads:     s.SCReads,
		SCWrites:    s.SCWrites,
		Awaits:      s.Awaits,
		BlockedNS:   int64(s.Blocked),
		BlockedByCause: map[string]int64{
			"await":        int64(s.BlockedAwait),
			"causal-wait":  int64(s.BlockedCausalWait),
			"sc":           int64(s.BlockedSC),
			"invalidation": int64(s.BlockedInvalidation),
		},
		MalformedUpdates: s.MalformedUpdates,
	}
}

// NetMetricsOf snapshots a transport's accounting into the registry shape.
// When the backend is the TCP transport, its link diagnostics (dials,
// replays, dedup drops) ride along; the simulated fabric reports zeros
// there. The returned value owns its containers (transport Stats are
// copy-on-read).
func NetMetricsOf(tr transport.Transport) obs.NetMetrics {
	s := tr.Stats()
	m := obs.NetMetrics{
		MessagesSent: s.MessagesSent,
		BytesSent:    s.BytesSent,
		PerNodeSent:  s.PerNodeSent,
		PerKind:      s.PerKind,
		PerKindBytes: s.PerKindBytes,
	}
	if dt, ok := tr.(interface{ Diag() tcp.Diag }); ok {
		d := dt.Diag()
		m.Dials = d.Dials
		m.DialFailures = d.DialFailures
		m.Replayed = d.Replayed
		m.Duplicates = d.Duplicates
		m.DecodeErrors = d.DecodeErrors
	}
	return m
}

// SyncMetricsOf combines a process's lock- and barrier-client counters into
// the registry shape.
func SyncMetricsOf(ls syncmgr.ClientStats, bs syncmgr.BarrierStats) obs.SyncMetrics {
	return obs.SyncMetrics{
		LockAcquires:  ls.Acquires,
		LockAcquireNS: int64(ls.AcquireWait),
		LockReleaseNS: int64(ls.ReleaseWait),
		Barriers:      bs.Barriers,
		BarrierWaitNS: int64(bs.Wait),
	}
}

// registerProcSections adds one process's sections — "mem", "sync",
// "trace" — to a registry. Sections are closures over the live process, so
// every snapshot observes current counters.
func registerProcSections(r *obs.Registry, p *Proc) {
	r.Register("mem", func() any { return MemMetricsOf(p.MemStats()) })
	r.Register("sync", func() any {
		return SyncMetricsOf(p.LockStats(), p.BarrierStats())
	})
	r.Register("trace", func() any { return obs.TraceMetricsOf(p.Tracer()) })
}

// Registry builds one process's unified metrics registry: memory-layer
// counters with the per-cause blocked split, synchronization-client
// counters, and the tracer's own ring state.
func (p *Proc) Registry() *obs.Registry {
	r := obs.NewRegistry()
	registerProcSections(r, p)
	return r
}

// Registry builds the system-wide registry for an in-process deployment:
// the shared fabric's accounting under "net" plus every process's sections
// under "proc<i>/". One JSON document covers the whole fleet, which is what
// the simulated-deployment benchmarks want.
func (s *System) Registry() *obs.Registry {
	r := obs.NewRegistry()
	fabric := s.fabric
	r.Register("net", func() any { return NetMetricsOf(fabric) })
	for i, p := range s.procs {
		p := p
		r.Register(fmt.Sprintf("proc%d/mem", i), func() any {
			return MemMetricsOf(p.MemStats())
		})
		r.Register(fmt.Sprintf("proc%d/sync", i), func() any {
			return SyncMetricsOf(p.LockStats(), p.BarrierStats())
		})
		r.Register(fmt.Sprintf("proc%d/trace", i), func() any {
			return obs.TraceMetricsOf(p.Tracer())
		})
	}
	return r
}
