package core

import (
	"math/rand"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"mixedmem/internal/check"
	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
)

// TestRuntimeAlwaysMixedConsistent is the runtime conformance fuzzer: random
// *unsynchronized* programs — racing writers and readers with mixed labels —
// executed under a random network adversary (channels held and released
// mid-run) must still record mixed-consistent histories. Unlike the E9
// corollary tests, these programs promise nothing about sequential
// consistency; Definition 4 is the only obligation, and the runtime must
// meet it no matter how hostile the delivery schedule.
func TestRuntimeAlwaysMixedConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing test")
	}
	for seed := int64(0); seed < 15; seed++ {
		seed := seed
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			h := runRacyProgram(t, seed, dsm.BatchConfig{})
			a, err := h.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if v := check.Mixed(a); len(v) != 0 {
				t.Fatalf("runtime violated mixed consistency: %v", v[0])
			}
		})
	}
}

// TestRuntimeAlwaysMixedConsistentBatched re-runs the conformance fuzzer
// with the update outbox on and a narrow window, so flushes trigger through
// every path (threshold, linger, sync boundaries) while the adversary holds
// and releases channels. Coalescing may drop intermediate values from the
// wire, but the recorded histories must still satisfy Definition 4.
func TestRuntimeAlwaysMixedConsistentBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing test")
	}
	batch := dsm.BatchConfig{Enabled: true, MaxUpdates: 4, Linger: 200 * time.Microsecond}
	for seed := int64(50); seed < 60; seed++ {
		seed := seed
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			h := runRacyProgram(t, seed, batch)
			a, err := h.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if v := check.Mixed(a); len(v) != 0 {
				t.Fatalf("batched runtime violated mixed consistency: %v", v[0])
			}
		})
	}
}

// runRacyProgram runs a random program of racing reads and writes over a few
// locations with an adversary toggling channel holds, and returns the
// recorded history.
func runRacyProgram(t *testing.T, seed int64, batch dsm.BatchConfig) *history.History {
	t.Helper()
	const (
		procs      = 3
		opsPerProc = 12
		locs       = 3
	)
	sys, err := NewSystem(Config{Procs: procs, Record: true, Batch: batch})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()

	// Adversary: toggle holds on random channels while the program runs.
	stop := make(chan struct{})
	advDone := make(chan struct{})
	go func() {
		defer close(advDone)
		r := rand.New(rand.NewSource(seed * 7919))
		type pair struct{ from, to int }
		var held []pair
		defer func() {
			for _, p := range held {
				_ = sys.Fabric().Release(p.from, p.to)
			}
		}()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(100+r.Intn(400)) * time.Microsecond):
			}
			if len(held) > 0 && r.Intn(2) == 0 {
				idx := r.Intn(len(held))
				p := held[idx]
				_ = sys.Fabric().Release(p.from, p.to)
				held = append(held[:idx], held[idx+1:]...)
				continue
			}
			from, to := r.Intn(procs), r.Intn(procs)
			if from == to {
				continue
			}
			p := pair{from, to}
			_ = sys.Fabric().Hold(from, to)
			held = append(held, p)
		}
	}()

	var unique atomic.Int64
	sys.Run(func(p *Proc) {
		r := rand.New(rand.NewSource(seed + int64(p.ID())*1001))
		for i := 0; i < opsPerProc; i++ {
			loc := "v" + strconv.Itoa(r.Intn(locs))
			switch r.Intn(4) {
			case 0:
				p.Write(loc, unique.Add(1))
			case 1:
				p.ReadPRAM(loc)
			case 2:
				p.ReadCausal(loc)
			default:
				// A short pause lets the adversary interleave.
				time.Sleep(time.Duration(r.Intn(200)) * time.Microsecond)
				p.ReadCausal(loc)
			}
		}
	})
	close(stop)
	<-advDone
	return sys.History()
}

// TestRuntimeCausalReadsNeverViolateUnderAdversary focuses the fuzzer on the
// WRC shape: a relay chain with the direct channel held. The runtime's
// causal view must never let the stale read through as a causal read.
func TestRuntimeCausalReadsNeverViolateUnderAdversary(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		sys, err := NewSystem(Config{Procs: 3, Record: true})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		_ = sys.Fabric().Hold(0, 2)
		timer := time.AfterFunc(10*time.Millisecond, func() {
			_ = sys.Fabric().Release(0, 2)
		})

		sys.Run(func(p *Proc) {
			switch p.ID() {
			case 0:
				p.Write("x", int64(trial*10+1))
				p.Write("f", int64(trial*10+2))
			case 1:
				p.Await("f", int64(trial*10+2))
				p.Write("g", int64(trial*10+3))
			case 2:
				p.Await("g", int64(trial*10+3))
				p.ReadCausal("x") // must be the fresh value
				p.ReadPRAM("x")   // may be stale; still PRAM-legal
			}
		})
		timer.Stop()
		h := sys.History()
		sys.Close()

		a, err := h.Analyze()
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		if v := check.Mixed(a); len(v) != 0 {
			t.Fatalf("trial %d: %v", trial, v[0])
		}
		// The causal read must have returned the fresh value.
		for _, op := range h.Ops {
			if op.Kind == history.Read && op.Label == history.LabelCausal && op.Loc == "x" {
				if op.Value != int64(trial*10+1) {
					t.Fatalf("trial %d: causal read returned %d", trial, op.Value)
				}
			}
		}
	}
}

// TestRuntimeSyncSoupMixedConsistent fuzzes the full primitive set: every
// round each process runs a random mix of writes, PRAM reads, causal reads,
// and lock-protected read-modify-writes, then all processes cross a global
// barrier. The recorded histories must always satisfy Definition 4 and be
// well formed (balanced locks, consistent barrier counts).
func TestRuntimeSyncSoupMixedConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing test")
	}
	for seed := int64(100); seed < 108; seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			runSyncSoup(t, seed, dsm.BatchConfig{})
		})
	}
}

// TestRuntimeSyncSoupBatchedMixedConsistent re-runs the sync soup with the
// outbox on: lock releases, barrier arrivals, and awaits must all flush the
// pending batches, or the counted handshakes deadlock and the histories go
// inconsistent.
func TestRuntimeSyncSoupBatchedMixedConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing test")
	}
	batch := dsm.BatchConfig{Enabled: true, MaxUpdates: 4, Linger: 200 * time.Microsecond}
	for seed := int64(200); seed < 206; seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			runSyncSoup(t, seed, batch)
		})
	}
}

// runSyncSoup runs one full-primitive-set fuzz round and checks the recorded
// history against Definition 4.
func runSyncSoup(t *testing.T, seed int64, batch dsm.BatchConfig) {
	t.Helper()
	sys, err := NewSystem(Config{Procs: 3, Record: true, Batch: batch})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	var unique atomic.Int64
	sys.Run(func(p *Proc) {
		r := rand.New(rand.NewSource(seed + int64(p.ID())*31))
		for round := 0; round < 3; round++ {
			for i := 0; i < 4; i++ {
				loc := "s" + strconv.Itoa(r.Intn(3))
				switch r.Intn(4) {
				case 0:
					p.Write(loc, unique.Add(1))
				case 1:
					p.ReadPRAM(loc)
				case 2:
					p.ReadCausal(loc)
				default:
					lock := "lk" + strconv.Itoa(r.Intn(2))
					p.WLock(lock)
					v := p.ReadCausal("guarded" + lock)
					_ = v
					p.Write("guarded"+lock, unique.Add(1))
					p.WUnlock(lock)
				}
			}
			p.Barrier()
		}
	})
	h := sys.History()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze (well-formedness): %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("mixed consistency violated: %v", v[0])
	}
}
