package core

import (
	"strconv"
	"testing"
	"time"

	"mixedmem/internal/network"
	"mixedmem/internal/syncmgr"
)

// TestStressMixedWorkload drives eight processes through a mixed workload —
// locked counters, barrier phases, awaits, and counter objects — under a
// jittery latency model, and checks every invariant that survives
// nondeterminism: lock-protected counters lose no updates, barrier phases
// see complete prior phases, and counter objects converge.
func TestStressMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys, err := NewSystem(Config{
		Procs: 8,
		Latency: network.LatencyModel{
			Fixed:  20 * time.Microsecond,
			Jitter: 50 * time.Microsecond,
		},
		Seed:        42,
		Propagation: syncmgr.Lazy,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()

	const (
		rounds     = 4
		lockIncs   = 5
		counterInc = 7
	)
	sums := make([]int64, 8)
	sys.Run(func(p *Proc) {
		for r := 0; r < rounds; r++ {
			// Phase A: everyone writes its slot and bumps shared state.
			p.Write("slot"+strconv.Itoa(p.ID()), int64(r*100+p.ID()+1))
			for i := 0; i < lockIncs; i++ {
				p.WLock("cnt")
				v := p.ReadCausal("shared")
				p.Write("shared", v+1)
				p.WUnlock("cnt")
			}
			for i := 0; i < counterInc; i++ {
				p.Add("free", 1)
			}
			p.Barrier()
			// Phase B: read every slot; all phase-A writes must be there.
			var sum int64
			for q := 0; q < p.N(); q++ {
				sum += p.ReadPRAM("slot" + strconv.Itoa(q))
			}
			want := int64(8*r*100 + (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8))
			if sum != want {
				t.Errorf("proc %d round %d: slot sum = %d, want %d", p.ID(), r, sum, want)
			}
			sums[p.ID()] = sum
			p.Barrier()
		}
	})

	p0 := sys.Proc(0)
	p0.WLock("cnt")
	if got := p0.ReadCausal("shared"); got != 8*rounds*lockIncs {
		t.Fatalf("locked counter = %d, want %d", got, 8*rounds*lockIncs)
	}
	p0.WUnlock("cnt")
	if got := p0.ReadPRAM("free"); got != 8*rounds*counterInc {
		t.Fatalf("counter object = %d, want %d", got, 8*rounds*counterInc)
	}
}

// TestStressEagerContention hammers one lock from six processes under eager
// propagation: the slowest mode with the most protocol traffic, checked for
// lost updates and deadlock.
func TestStressEagerContention(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys, err := NewSystem(Config{Procs: 6, Propagation: syncmgr.Eager})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	const iters = 25
	done := make(chan struct{})
	go func() {
		defer close(done)
		sys.Run(func(p *Proc) {
			for i := 0; i < iters; i++ {
				p.WLock("hot")
				v := p.ReadCausal("c")
				p.Write("c", v+1)
				p.WUnlock("hot")
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("eager contention workload deadlocked")
	}
	if got := sys.Proc(0).ReadCausal("c"); got != 6*iters {
		t.Fatalf("counter = %d, want %d", got, 6*iters)
	}
}
