package core

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"mixedmem/internal/obs"
)

// TestRegistryUnifiesSubsystems runs a small traced workload and checks the
// unified registry surfaces every subsystem's counters in one snapshot: the
// memory layer (with the per-cause blocked split summing to the aggregate),
// the transport, the sync clients, and the tracer's own ring state.
func TestRegistryUnifiesSubsystems(t *testing.T) {
	sys, err := NewSystem(Config{Procs: 2, TraceCapacity: 1024})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	sys.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Write("data", 7)
			p.Write("ready", 1)
		} else {
			p.Await("ready", 1)
			_ = p.ReadCausal("data")
		}
		p.WLock("l")
		p.WUnlock("l")
		p.Barrier()
	})

	for i := 0; i < 2; i++ {
		p := sys.Proc(i)
		if p.Tracer() == nil {
			t.Fatalf("proc %d: nil tracer under TraceCapacity", i)
		}
		if p.Tracer().Recorded() == 0 {
			t.Fatalf("proc %d: tracer recorded nothing", i)
		}
		m := MemMetricsOf(p.MemStats())
		var sum int64
		for _, v := range m.BlockedByCause {
			sum += v
		}
		if sum != m.BlockedNS {
			t.Fatalf("proc %d: cause split %d != blocked %d", i, sum, m.BlockedNS)
		}
		tm := obs.TraceMetricsOf(p.Tracer())
		if !tm.Enabled || tm.Recorded == 0 {
			t.Fatalf("proc %d: trace metrics %+v", i, tm)
		}
	}

	r := sys.Registry()
	snap := r.Snapshot()
	for _, want := range []string{"net", "proc0/mem", "proc1/sync", "proc0/trace"} {
		if _, ok := snap[want]; !ok {
			t.Fatalf("registry missing section %q (have %v)", want, r.SectionNames())
		}
	}
	net := snap["net"].(obs.NetMetrics)
	if net.MessagesSent == 0 {
		t.Fatalf("no transport accounting: %+v", net)
	}
	sy := snap["proc1/sync"].(obs.SyncMetrics)
	if sy.LockAcquires == 0 || sy.Barriers == 0 {
		t.Fatalf("sync counters missing: %+v", sy)
	}

	// The registry serves the same snapshot as one JSON document.
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("registry JSON: %v", err)
	}
	if _, ok := doc["proc0/mem"]; !ok {
		t.Fatalf("served document missing proc0/mem: %s", rec.Body.String())
	}
}

// TestTracerDisabledByDefault pins that the zero config carries no tracer:
// Proc.Tracer returns nil and the trace section reports disabled.
func TestTracerDisabledByDefault(t *testing.T) {
	sys, err := NewSystem(Config{Procs: 1})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()
	if sys.Proc(0).Tracer() != nil {
		t.Fatal("tracer present without TraceCapacity")
	}
	if tm := obs.TraceMetricsOf(sys.Proc(0).Tracer()); tm.Enabled {
		t.Fatalf("trace metrics enabled without tracer: %+v", tm)
	}
}
