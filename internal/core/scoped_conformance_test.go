package core

import (
	"math/rand"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"mixedmem/internal/check"
	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
)

// scopedConformanceScope is the placement used by the scoped conformance
// fuzzer: one fully-causal location, one with a mix of causal and elided
// readers, one PRAM-elided everywhere. Writes to v1 exercise the kind-split
// batching path (causal copy to one reader, elided copy to another), and v2
// exercises the pure fast path under the same adversary schedule.
func scopedConformanceScope() *dsm.ScopeMap {
	return &dsm.ScopeMap{
		Readers: map[string][]int{
			"v0": {1, 2}, "v1": {0, 2}, "v2": {0, 1},
		},
		CausalReaders: map[string][]int{
			"v0": {1, 2}, "v1": {0},
		},
	}
}

// scopedMenus lists, per process, which locations it may read and with which
// label — the reader-registration contract: a process only reads locations it
// is registered for, and only causally where causally registered.
type scopedMenu struct {
	pram   []string
	causal []string
}

func scopedMenus() [3]scopedMenu {
	return [3]scopedMenu{
		{pram: []string{"v1", "v2"}, causal: []string{"v1"}},
		{pram: []string{"v0", "v2"}, causal: []string{"v0"}},
		{pram: []string{"v0", "v1"}, causal: []string{"v0"}},
	}
}

// TestRuntimeScopedMixedConsistent is the causal-scoped analogue of the
// runtime conformance fuzzer: random racing programs where every read honors
// the registration contract, executed under a random network adversary, must
// record mixed-consistent histories even though updates now travel point to
// point with dependency matrices instead of timestamped broadcast.
func TestRuntimeScopedMixedConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing test")
	}
	for seed := int64(300); seed < 312; seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			h := runScopedRacyProgram(t, seed, dsm.BatchConfig{})
			a, err := h.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if v := check.Mixed(a); len(v) != 0 {
				t.Fatalf("scoped runtime violated mixed consistency: %v", v[0])
			}
		})
	}
}

// TestRuntimeScopedMixedConsistentBatched re-runs the scoped fuzzer with a
// narrow outbox window, so causal and elided copies to the same destination
// force mid-stream kind-split flushes while the adversary holds channels.
func TestRuntimeScopedMixedConsistentBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing test")
	}
	batch := dsm.BatchConfig{Enabled: true, MaxUpdates: 4, Linger: 200 * time.Microsecond}
	for seed := int64(400); seed < 410; seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			h := runScopedRacyProgram(t, seed, batch)
			a, err := h.Analyze()
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if v := check.Mixed(a); len(v) != 0 {
				t.Fatalf("batched scoped runtime violated mixed consistency: %v", v[0])
			}
		})
	}
}

// runScopedRacyProgram runs a random scoped program — every process writes
// freely but reads only its registered locations — under an adversary
// toggling channel holds, and returns the recorded history.
func runScopedRacyProgram(t *testing.T, seed int64, batch dsm.BatchConfig) *history.History {
	t.Helper()
	const (
		procs      = 3
		opsPerProc = 12
	)
	sys, err := NewSystem(Config{
		Procs: procs, Record: true, Batch: batch,
		Placement: scopedConformanceScope(),
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	defer sys.Close()

	stop := make(chan struct{})
	advDone := make(chan struct{})
	go func() {
		defer close(advDone)
		r := rand.New(rand.NewSource(seed * 7919))
		type pair struct{ from, to int }
		var held []pair
		defer func() {
			for _, p := range held {
				_ = sys.Fabric().Release(p.from, p.to)
			}
		}()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(100+r.Intn(400)) * time.Microsecond):
			}
			if len(held) > 0 && r.Intn(2) == 0 {
				idx := r.Intn(len(held))
				p := held[idx]
				_ = sys.Fabric().Release(p.from, p.to)
				held = append(held[:idx], held[idx+1:]...)
				continue
			}
			from, to := r.Intn(procs), r.Intn(procs)
			if from == to {
				continue
			}
			_ = sys.Fabric().Hold(from, to)
			held = append(held, pair{from, to})
		}
	}()

	menus := scopedMenus()
	var unique atomic.Int64
	sys.Run(func(p *Proc) {
		r := rand.New(rand.NewSource(seed + int64(p.ID())*1001))
		menu := menus[p.ID()]
		for i := 0; i < opsPerProc; i++ {
			switch r.Intn(4) {
			case 0:
				p.Write("v"+strconv.Itoa(r.Intn(3)), unique.Add(1))
			case 1:
				p.ReadPRAM(menu.pram[r.Intn(len(menu.pram))])
			case 2:
				p.ReadCausal(menu.causal[r.Intn(len(menu.causal))])
			default:
				time.Sleep(time.Duration(r.Intn(200)) * time.Microsecond)
				p.ReadCausal(menu.causal[r.Intn(len(menu.causal))])
			}
		}
	})
	close(stop)
	<-advDone
	return sys.History()
}

// TestLearnedScopeRoundTrip runs a deterministic relay program with access
// tracking on, derives a placement from the recorded accesses, and re-runs
// the same program under that learned scope: the learned map must name
// exactly the observed readers and the scoped re-run must produce the same
// values and a mixed-consistent history.
func TestLearnedScopeRoundTrip(t *testing.T) {
	relay := func(sys *System) (int64, int64) {
		var causalX, pramF int64
		sys.Run(func(p *Proc) {
			switch p.ID() {
			case 0:
				p.Write("x", 7)
				p.Write("f", 1)
			case 1:
				p.Await("f", 1)
				p.Write("g", 1)
			case 2:
				p.Await("g", 1)
				causalX = p.ReadCausal("x")
				pramF = p.ReadPRAM("f")
			}
		})
		return causalX, pramF
	}

	learnSys, err := NewSystem(Config{Procs: 3, TrackAccess: true})
	if err != nil {
		t.Fatalf("NewSystem(track): %v", err)
	}
	if x, _ := relay(learnSys); x != 7 {
		t.Fatalf("profiling run read x=%d, want 7", x)
	}
	scope := learnSys.LearnedScope()
	learnSys.Close()
	if scope == nil {
		t.Fatal("LearnedScope returned nil after a tracked run")
	}
	// Awaits and causal reads are causal accesses; the plain PRAM read of f
	// must be learned as a PRAM-only registration for process 2.
	if got := scope.CausalReaders["x"]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("learned causal readers of x = %v, want [2]", got)
	}
	if got := scope.CausalReaders["f"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("learned causal readers of f = %v, want [1]", got)
	}
	if got := scope.Readers["f"]; len(got) != 2 {
		t.Fatalf("learned readers of f = %v, want procs 1 and 2", got)
	}

	scopedSys, err := NewSystem(Config{Procs: 3, Record: true, Placement: scope})
	if err != nil {
		t.Fatalf("NewSystem(learned scope): %v", err)
	}
	defer scopedSys.Close()
	x, f := relay(scopedSys)
	if x != 7 || f != 1 {
		t.Fatalf("scoped re-run read x=%d f=%d, want 7 and 1", x, f)
	}
	a, err := scopedSys.History().Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("scoped re-run violated mixed consistency: %v", v[0])
	}
}
