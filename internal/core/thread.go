package core

import (
	"sync"

	"mixedmem/internal/dsm"
)

// Thread is one concurrent strand of a multithreaded process, created by
// Proc.Forall. The paper models local computations as partial orders
// (Section 3), and the handshake solver's coordinator uses a forall
// construct (Figure 3); Thread provides the memory operations for such
// strands. Synchronization operations (locks, barriers) are not available
// on threads: well-formedness requires every barrier to be totally ordered
// with all operations of its process, which only the main strand can
// guarantee.
type Thread struct {
	h dsm.ThreadHandle
}

var _ ThreadOps = (*Thread)(nil)

// Write stores value at loc on this thread.
func (t *Thread) Write(loc string, value int64) { t.h.Write(loc, value) }

// ReadPRAM performs a PRAM read on this thread.
func (t *Thread) ReadPRAM(loc string) int64 { return t.h.ReadPRAM(loc) }

// ReadCausal performs a causal read on this thread.
func (t *Thread) ReadCausal(loc string) int64 { return t.h.ReadCausal(loc) }

// ReadSlow performs a slow read on this thread.
func (t *Thread) ReadSlow(loc string) int64 { return t.h.ReadSlow(loc) }

// ReadSC performs a sequentially consistent read on this thread (a blocking
// round trip to the location's owner).
func (t *Thread) ReadSC(loc string) int64 { return t.h.ReadSC(loc) }

// Await blocks until loc holds value in the causal view.
func (t *Thread) Await(loc string, value int64) { t.h.AwaitCausal(loc, value) }

// AwaitPRAM blocks until loc holds value in the PRAM view.
func (t *Thread) AwaitPRAM(loc string, value int64) { t.h.AwaitPRAM(loc, value) }

// Add applies a commutative increment to a counter object.
func (t *Thread) Add(loc string, delta int64) { t.h.Add(loc, delta) }

// AddFloat applies a commutative float64 increment to a counter object.
func (t *Thread) AddFloat(loc string, delta float64) { t.h.AddFloat(loc, delta) }

// Forall runs body once per index on concurrent threads of this process and
// waits for all of them — the fork/join parallel loop of Figure 3. When the
// system records a history, each strand's operations carry a fresh thread
// ID, and fork/join program-order edges connect the parent strand to its
// children, so the recorded local history is the partial order the paper's
// model prescribes.
//
// Bodies run concurrently on one replica: their operations interleave
// arbitrarily (they are unordered by program order), which is exactly the
// intra-process concurrency the model permits.
func (p *Proc) Forall(count int, body func(i int, t ThreadOps)) {
	if count <= 0 {
		return
	}
	p.threadMu.Lock()
	if p.nextThread == 0 {
		p.nextThread = 1 // thread 0 is the main strand
	}
	base := p.nextThread
	p.nextThread += count
	p.threadMu.Unlock()

	tr := p.node.Trace()
	ids := make([]int, count)
	for i := range ids {
		ids[i] = base + i
	}
	if tr != nil {
		tr.Fork(p.ID(), 0, ids)
	}
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(i, &Thread{h: p.node.Thread(ids[i])})
		}()
	}
	wg.Wait()
	if tr != nil {
		tr.Join(p.ID(), 0, ids)
	}
}
