// Package core is the paper's primary contribution as a programming model:
// mixed-consistency distributed shared memory with PRAM and causal reads,
// writes, read/write locks, barriers, await statements, and commutative
// counter objects.
//
// A System bundles the substrates — the simulated message-passing fabric
// (internal/network), one replicated-memory node per process (internal/dsm),
// and the lock/barrier managers (internal/syncmgr) — behind one handle per
// process (Proc). Programs are written against the Process interface, so the
// same program also runs on the sequentially consistent baseline
// (internal/seqmem) for the paper's comparisons.
//
// A minimal program:
//
//	sys, _ := core.NewSystem(core.Config{Procs: 2})
//	defer sys.Close()
//	sys.Run(func(p *core.Proc) {
//	    if p.ID() == 0 {
//	        p.Write("data", 42)
//	        p.Write("ready", 1)
//	    } else {
//	        p.Await("ready", 1)
//	        _ = p.ReadPRAM("data") // 42: await orders the producer's writes
//	    }
//	})
package core

import (
	"fmt"
	"math"
	"sync"

	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/obs"
	"mixedmem/internal/syncmgr"
	"mixedmem/internal/transport"
)

// Process is the programming interface of the mixed consistency model. Both
// the mixed-consistency Proc and the sequentially consistent baseline
// implement it, so applications and benchmarks can swap memories.
type Process interface {
	// ID returns the process identity, 0..N-1.
	ID() int
	// N returns the number of processes.
	N() int
	// Write stores value at loc (non-blocking; propagates asynchronously).
	Write(loc string, value int64)
	// ReadPRAM performs a PRAM-labeled read of loc (Definition 3).
	ReadPRAM(loc string) int64
	// ReadCausal performs a Causal-labeled read of loc (Definition 2).
	ReadCausal(loc string) int64
	// ReadSlow performs a Slow-labeled read of loc — the weakest point of
	// the label lattice, guaranteeing only per-location, per-writer FIFO.
	// Meaningful for locations labeled Slow in Config.Labels; elsewhere it
	// reads the same replica state as ReadPRAM.
	ReadSlow(loc string) int64
	// ReadSC performs an SC-labeled read of loc — the strongest point of
	// the lattice, a blocking round trip to the location's owner. Only
	// valid for locations labeled SC in Config.Labels (the sequentially
	// consistent baseline serves it for every location).
	ReadSC(loc string) int64
	// Await blocks until loc holds value (Section 3.1.3), gated on the
	// causal view: when it returns, every update the matched write
	// transitively depends on has been applied locally, so causal reads
	// that follow satisfy Definition 2.
	Await(loc string, value int64)
	// AwaitPRAM blocks until loc holds value in the PRAM view only — the
	// plain busy-wait loop of PRAM reads of Section 6. Reads after it see
	// the matched write and its sender's FIFO prefix but not transitive
	// dependencies; pair it with PRAM reads.
	AwaitPRAM(loc string, value int64)
	// RLock/RUnlock/WLock/WUnlock are the lock operations of
	// Section 3.1.1.
	RLock(name string)
	RUnlock(name string)
	WLock(name string)
	WUnlock(name string)
	// Barrier blocks until all processes arrive (Section 3.1.2). The i-th
	// call on every process is barrier i.
	Barrier()
	// Add applies a commutative increment (negative to decrement) to a
	// counter object (Section 5.3's abstract objects).
	Add(loc string, delta int64)
	// AddFloat applies a commutative float64 increment to a location
	// holding a Float64bits-encoded value (the counter-object view of the
	// Cholesky column updates, Section 5.3).
	AddFloat(loc string, delta float64)
	// Forall runs body once per index on concurrent strands of this
	// process and waits for all — the fork/join parallel loop the paper's
	// Figure 3 coordinator uses. Bodies receive the index and a restricted
	// operation set; synchronization operations (locks, barriers) stay on
	// the main strand.
	Forall(count int, body func(i int, t ThreadOps))
}

// ThreadOps is the operation set available inside a Forall body: memory
// operations and awaits, but no locks or barriers (well-formedness requires
// barriers to be totally ordered with all operations of their process).
type ThreadOps interface {
	Write(loc string, value int64)
	ReadPRAM(loc string) int64
	ReadCausal(loc string) int64
	ReadSlow(loc string) int64
	ReadSC(loc string) int64
	Await(loc string, value int64)
	AwaitPRAM(loc string, value int64)
	Add(loc string, delta int64)
	AddFloat(loc string, delta float64)
}

// Config configures a mixed-consistency System.
type Config struct {
	// Procs is the number of application processes. Required.
	Procs int
	// Transport, when non-nil, is the message substrate to run on; it must
	// connect exactly Procs nodes and serve Recv for all of them (the
	// simulated fabric does; per-process wire transports like tcp serve
	// only their local node and belong with NewPeer instead). When nil, a
	// simulated fabric with the configured Latency/Seed is created and
	// owned by the system. A caller-supplied transport is still closed by
	// System.Close.
	Transport transport.Transport
	// Latency models message delivery cost on the default simulated
	// fabric; the zero value is immediate delivery (deterministic test
	// mode). Ignored when Transport is set.
	Latency network.LatencyModel
	// Seed seeds latency jitter. Ignored when Transport is set.
	Seed int64
	// Propagation selects how critical-section updates reach the next
	// lock holder. Zero value means Lazy.
	Propagation syncmgr.PropagationMode
	// Record, when true, records all memory and synchronization operations
	// into a history for the checker. Recorded programs must write
	// distinct values per location.
	Record bool
	// ManagerProc hosts the lock and barrier managers (default process 0).
	ManagerProc int
	// PRAMOnly elides vector timestamps from update messages and keeps
	// only the PRAM view — the Section 6 optimization for programs whose
	// reads are all PRAM (Corollary 2's class). Causal reads degrade to
	// PRAM reads; only use for programs certified PRAM-consistent.
	PRAMOnly bool
	// Placement, when non-nil, restricts each location's updates to its
	// registered readers instead of broadcasting — Section 6's
	// access-pattern optimization. Causal-registered readers receive
	// dependency-stamped updates; the rest get the timestamp-elided fast
	// path. Lock-based propagation is unsupported under a placement.
	Placement *dsm.ScopeMap
	// TrackAccess records each process's read accesses (location and
	// consistency label) so LearnedScope can derive a Placement from a
	// profiling run.
	TrackAccess bool
	// Labels assigns lattice points to individual locations
	// (dsm.Config.Labels): Slow locations take the timestamp-elided
	// per-sender-FIFO fast path, SC locations are served by a blocking
	// central-owner protocol, PRAM and Causal document intent on the
	// default broadcast path. Unlabeled locations behave as before
	// (causal-capable broadcast). Every process of a system shares this
	// map. See dsm.Config.Labels for the soundness contracts.
	Labels map[string]history.Label
	// Batch configures the per-destination update outbox (dsm.BatchConfig):
	// writes enqueue into per-peer batches that flush on thresholds, a
	// linger timer, and every synchronization boundary. The zero value
	// sends one message per write per destination, as before.
	Batch dsm.BatchConfig
	// TraceCapacity, when positive, gives every node an event tracer
	// (internal/obs) with a ring of this many slots (rounded up to a power
	// of two, minimum 64). Zero disables tracing entirely — the hot paths
	// then carry only a nil check. Per-node snapshots come back through
	// Proc.Tracer.
	TraceCapacity int
}

// System is a running mixed-consistency memory over Procs processes.
type System struct {
	fabric transport.Transport
	procs  []*Proc
	trace  *history.Builder
}

// Proc is one process's handle on the system.
type Proc struct {
	node    *dsm.Node
	locks   *syncmgr.Client
	barrier *syncmgr.BarrierClient
	n       int

	threadMu   sync.Mutex
	nextThread int
}

var _ Process = (*Proc)(nil)

// NewSystem builds the fabric, nodes, managers, and clients, and starts all
// receive loops. Callers must Close the system.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("core: %d procs", cfg.Procs)
	}
	if cfg.ManagerProc < 0 || cfg.ManagerProc >= cfg.Procs {
		return nil, fmt.Errorf("core: manager proc %d out of range", cfg.ManagerProc)
	}
	mode := cfg.Propagation
	if mode == 0 {
		mode = syncmgr.Lazy
	}
	fabric := cfg.Transport
	if fabric == nil {
		f, err := network.New(network.Config{
			Nodes:   cfg.Procs,
			Latency: cfg.Latency,
			Seed:    cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("core: fabric: %w", err)
		}
		fabric = f
	} else if fabric.Nodes() != cfg.Procs {
		return nil, fmt.Errorf("core: transport connects %d nodes, config wants %d procs",
			fabric.Nodes(), cfg.Procs)
	}
	var trace *history.Builder
	if cfg.Record {
		trace = history.NewBuilder(cfg.Procs)
	}
	sys := &System{fabric: fabric, trace: trace}

	dispatchers := make([]*syncmgr.Dispatcher, cfg.Procs)
	nodes := make([]*dsm.Node, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		d := syncmgr.NewDispatcher()
		dispatchers[i] = d
		var tracer *obs.Tracer
		if cfg.TraceCapacity > 0 {
			tracer = obs.NewTracer(i, cfg.TraceCapacity)
		}
		node, err := dsm.NewNode(dsm.Config{
			ID: i, N: cfg.Procs, Transport: fabric, Trace: trace,
			Handler: d.Handle, PRAMOnly: cfg.PRAMOnly, Scope: cfg.Placement,
			TrackAccess: cfg.TrackAccess, Batch: cfg.Batch, Labels: cfg.Labels,
			Tracer: tracer,
		})
		if err != nil {
			fabric.Close()
			for _, nd := range nodes {
				if nd != nil {
					nd.Close()
				}
			}
			return nil, fmt.Errorf("core: node %d: %w", i, err)
		}
		nodes[i] = node
	}
	lockMgr := syncmgr.NewManager(cfg.ManagerProc, fabric, mode)
	lockMgr.Bind(dispatchers[cfg.ManagerProc])
	barMgr := syncmgr.NewBarrierManager(cfg.ManagerProc, fabric, cfg.Procs)
	barMgr.Bind(dispatchers[cfg.ManagerProc])

	for i := 0; i < cfg.Procs; i++ {
		lc := syncmgr.NewClient(nodes[i], cfg.ManagerProc, mode)
		lc.Bind(dispatchers[i])
		bc := syncmgr.NewBarrierClient(nodes[i], cfg.ManagerProc)
		bc.Bind(dispatchers[i])
		sys.procs = append(sys.procs, &Proc{
			node: nodes[i], locks: lc, barrier: bc, n: cfg.Procs,
		})
	}
	return sys, nil
}

// Proc returns the handle for process i.
func (s *System) Proc(i int) *Proc { return s.procs[i] }

// Procs returns the number of processes.
func (s *System) Procs() int { return len(s.procs) }

// Run executes body once per process, each on its own goroutine, and waits
// for all of them — the usual SPMD driver for the paper's applications.
func (s *System) Run(body func(p *Proc)) {
	var wg sync.WaitGroup
	for _, p := range s.procs {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(p)
		}()
	}
	wg.Wait()
}

// History returns the recorded history, or nil when Record was false. Take
// it only after all processes have finished.
func (s *System) History() *history.History {
	if s.trace == nil {
		return nil
	}
	return s.trace.History()
}

// NetStats returns the transport's message accounting.
func (s *System) NetStats() network.Stats { return s.fabric.Stats() }

// LearnedScope merges every process's access log (Config.TrackAccess) into a
// ScopeMap for the workload: each location's readers are the processes that
// read it at all, and its causal readers are those that performed
// causal-labeled reads or awaits of it. Run the program once with tracking
// on, then rebuild the system with the returned map as Config.Placement.
// Returns nil when no accesses were recorded.
func (s *System) LearnedScope() *dsm.ScopeMap {
	scope := &dsm.ScopeMap{
		Readers:       make(map[string][]int),
		CausalReaders: make(map[string][]int),
	}
	for _, p := range s.procs {
		id := p.node.ID()
		for loc, kind := range p.node.Accessed() {
			scope.Readers[loc] = append(scope.Readers[loc], id)
			if kind&dsm.AccessCausal != 0 {
				scope.CausalReaders[loc] = append(scope.CausalReaders[loc], id)
			}
		}
	}
	if len(scope.Readers) == 0 {
		return nil
	}
	return scope
}

// Transport exposes the underlying message substrate.
func (s *System) Transport() transport.Transport { return s.fabric }

// Fabric returns the underlying simulated fabric, mainly so tests and
// experiments can build adversarial delivery schedules with Hold/Release.
// It returns nil when the system runs on a different transport backend.
func (s *System) Fabric() *network.Fabric {
	f, _ := s.fabric.(*network.Fabric)
	return f
}

// Close shuts down the fabric and all nodes.
func (s *System) Close() {
	s.fabric.Close()
	for _, p := range s.procs {
		p.node.Close()
	}
}

// ID returns the process identity.
func (p *Proc) ID() int { return p.node.ID() }

// N returns the number of processes.
func (p *Proc) N() int { return p.n }

// Write stores value at loc and broadcasts the update.
func (p *Proc) Write(loc string, value int64) { p.node.Write(loc, value) }

// ReadPRAM performs a PRAM read of loc.
func (p *Proc) ReadPRAM(loc string) int64 { return p.node.ReadPRAM(loc) }

// ReadCausal performs a causal read of loc.
func (p *Proc) ReadCausal(loc string) int64 { return p.node.ReadCausal(loc) }

// ReadSlow performs a slow read of loc (per-location FIFO only).
func (p *Proc) ReadSlow(loc string) int64 { return p.node.ReadSlow(loc) }

// ReadSC performs a sequentially consistent read of loc through its owner.
// Only valid for locations labeled SC in Config.Labels.
func (p *Proc) ReadSC(loc string) int64 { return p.node.ReadSC(loc) }

// Read performs a read with the given label, for code that selects the
// consistency level dynamically. LabelNone reads as PRAM, matching the
// historical default of this method.
func (p *Proc) Read(loc string, label history.Label) int64 {
	switch label {
	case history.LabelCausal:
		return p.ReadCausal(loc)
	case history.LabelSlow:
		return p.ReadSlow(loc)
	case history.LabelSC:
		return p.ReadSC(loc)
	default:
		return p.ReadPRAM(loc)
	}
}

// Await blocks until loc holds value in the causal view.
func (p *Proc) Await(loc string, value int64) { p.node.AwaitCausal(loc, value) }

// AwaitPRAM blocks until loc holds value in the PRAM view.
func (p *Proc) AwaitPRAM(loc string, value int64) { p.node.AwaitPRAM(loc, value) }

// RLock acquires a read lock on name.
func (p *Proc) RLock(name string) { p.locks.RLock(name) }

// RUnlock releases a read lock on name.
func (p *Proc) RUnlock(name string) { p.locks.RUnlock(name) }

// WLock acquires the write lock on name.
func (p *Proc) WLock(name string) { p.locks.WLock(name) }

// WUnlock releases the write lock on name.
func (p *Proc) WUnlock(name string) { p.locks.WUnlock(name) }

// Barrier blocks until all processes arrive and all prior-phase updates are
// applied locally.
func (p *Proc) Barrier() { p.barrier.Barrier() }

// BarrierGroup blocks until every process in members arrives at the named
// group's next barrier — the paper's subset barrier. All members must call
// it with the same name and member set; only updates from members are
// awaited.
func (p *Proc) BarrierGroup(name string, members []int) {
	p.barrier.BarrierGroup(name, members)
}

// Add applies a commutative increment to a counter object.
func (p *Proc) Add(loc string, delta int64) { p.node.Add(loc, delta) }

// AddFloat applies a commutative float64 increment to a counter object.
func (p *Proc) AddFloat(loc string, delta float64) { p.node.AddFloat(loc, delta) }

// FlushUpdates sends every pending outbox batch immediately. A no-op unless
// the system was built with Config.Batch enabled; programs that hand off
// through channels or other out-of-band signals (rather than the model's
// awaits, locks, and barriers, which all flush implicitly) call it before
// signaling.
func (p *Proc) FlushUpdates() { p.node.FlushUpdates() }

// Tracer returns the process's event tracer, or nil when the system was
// built without Config.TraceCapacity. Snapshot it after the workload (or at
// any quiescent point) to feed the obs explainer and exporters.
func (p *Proc) Tracer() *obs.Tracer { return p.node.Tracer() }

// MemStats returns the process's memory-operation counters.
func (p *Proc) MemStats() dsm.Stats { return p.node.Stats() }

// LockStats returns the process's lock-client counters.
func (p *Proc) LockStats() syncmgr.ClientStats { return p.locks.Stats() }

// BarrierStats returns the process's barrier-client counters.
func (p *Proc) BarrierStats() syncmgr.BarrierStats { return p.barrier.Stats() }

// WriteFloat stores a float64 at loc via its bit pattern. Programs recorded
// for the checker should prefer integer values; float writes are for the
// numeric applications.
func WriteFloat(p Process, loc string, value float64) {
	p.Write(loc, int64(math.Float64bits(value)))
}

// ReadPRAMFloat reads a float64 stored with WriteFloat using a PRAM read.
func ReadPRAMFloat(p Process, loc string) float64 {
	return math.Float64frombits(uint64(p.ReadPRAM(loc)))
}

// ReadCausalFloat reads a float64 stored with WriteFloat using a causal
// read.
func ReadCausalFloat(p Process, loc string) float64 {
	return math.Float64frombits(uint64(p.ReadCausal(loc)))
}

// ReadSlowFloat reads a float64 stored with WriteFloat using a slow read —
// per-location FIFO only, the weakest point of the lattice.
func ReadSlowFloat(p Process, loc string) float64 {
	return math.Float64frombits(uint64(p.ReadSlow(loc)))
}
