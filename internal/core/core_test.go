package core

import (
	"strconv"
	"sync"
	"testing"

	"mixedmem/internal/check"
	"mixedmem/internal/history"
	"mixedmem/internal/syncmgr"
)

func newSys(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{Procs: 0}); err == nil {
		t.Error("zero procs must error")
	}
	if _, err := NewSystem(Config{Procs: 2, ManagerProc: 5}); err == nil {
		t.Error("out-of-range manager must error")
	}
}

func TestProducerConsumer(t *testing.T) {
	sys := newSys(t, Config{Procs: 2})
	var got int64
	sys.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Write("data", 42)
			p.Write("ready", 1)
		} else {
			p.Await("ready", 1)
			got = p.ReadPRAM("data")
		}
	})
	if got != 42 {
		t.Fatalf("consumer read %d, want 42", got)
	}
}

func TestBarrierExchange(t *testing.T) {
	sys := newSys(t, Config{Procs: 4})
	sums := make([]int64, 4)
	sys.Run(func(p *Proc) {
		p.Write("v"+strconv.Itoa(p.ID()), int64(p.ID()+1))
		p.Barrier()
		var sum int64
		for q := 0; q < p.N(); q++ {
			sum += p.ReadPRAM("v" + strconv.Itoa(q))
		}
		sums[p.ID()] = sum
	})
	for i, s := range sums {
		if s != 10 {
			t.Errorf("proc %d sum = %d, want 10", i, s)
		}
	}
}

func TestLockedSharedCounter(t *testing.T) {
	sys := newSys(t, Config{Procs: 3, Propagation: syncmgr.Eager})
	const iters = 10
	sys.Run(func(p *Proc) {
		for i := 0; i < iters; i++ {
			p.WLock("l")
			v := p.ReadCausal("x")
			p.Write("x", v+1)
			p.WUnlock("l")
		}
	})
	p0 := sys.Proc(0)
	p0.WLock("l")
	got := p0.ReadCausal("x")
	p0.WUnlock("l")
	if got != 3*iters {
		t.Fatalf("counter = %d, want %d", got, 3*iters)
	}
}

func TestCounterObjects(t *testing.T) {
	sys := newSys(t, Config{Procs: 3})
	sys.Run(func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Add("count", -1)
		}
		p.Barrier()
		if got := p.ReadPRAM("count"); got != -60 {
			t.Errorf("proc %d sees count = %d, want -60", p.ID(), got)
		}
	})
}

func TestReadDispatchesOnLabel(t *testing.T) {
	sys := newSys(t, Config{Procs: 1})
	p := sys.Proc(0)
	p.Write("x", 5)
	if p.Read("x", history.LabelPRAM) != 5 || p.Read("x", history.LabelCausal) != 5 {
		t.Error("Read label dispatch broken")
	}
}

func TestFloatHelpers(t *testing.T) {
	sys := newSys(t, Config{Procs: 1})
	p := sys.Proc(0)
	WriteFloat(p, "f", 3.25)
	if got := ReadPRAMFloat(p, "f"); got != 3.25 {
		t.Errorf("PRAM float = %v", got)
	}
	if got := ReadCausalFloat(p, "f"); got != 3.25 {
		t.Errorf("causal float = %v", got)
	}
	WriteFloat(p, "neg", -0.5)
	if got := ReadPRAMFloat(p, "neg"); got != -0.5 {
		t.Errorf("negative float = %v", got)
	}
}

func TestStatsAccessors(t *testing.T) {
	sys := newSys(t, Config{Procs: 2})
	p := sys.Proc(0)
	p.Write("x", 1)
	p.ReadPRAM("x")
	p.WLock("l")
	p.WUnlock("l")
	sys.Run(func(p *Proc) { p.Barrier() })
	if s := p.MemStats(); s.Writes != 1 || s.PRAMReads != 1 {
		t.Errorf("mem stats = %+v", s)
	}
	if s := p.LockStats(); s.Acquires != 1 {
		t.Errorf("lock stats = %+v", s)
	}
	if s := p.BarrierStats(); s.Barriers != 1 {
		t.Errorf("barrier stats = %+v", s)
	}
	if ns := sys.NetStats(); ns.MessagesSent == 0 {
		t.Error("no messages accounted")
	}
}

func TestHistoryNilWithoutRecord(t *testing.T) {
	sys := newSys(t, Config{Procs: 1})
	if sys.History() != nil {
		t.Error("History must be nil without Record")
	}
}

func TestRecordedProducerConsumerIsMixedConsistent(t *testing.T) {
	sys := newSys(t, Config{Procs: 2, Record: true})
	sys.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Write("data", 7)
			p.Write("ready", 1)
		} else {
			p.Await("ready", 1)
			p.ReadPRAM("data")
			p.ReadCausal("data")
		}
	})
	a, err := sys.History().Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("not mixed consistent: %v", v)
	}
}

// TestCorollary1Property is the E9 property test for Corollary 1: random
// entry-consistent programs with causal reads always produce sequentially
// consistent histories.
func TestCorollary1Property(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for seed := int64(0); seed < 12; seed++ {
		h, locks, err := RunRandomEntryConsistent(RandomEntryConsistentConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := h.Analyze()
		if err != nil {
			t.Fatalf("seed %d: Analyze: %v", seed, err)
		}
		if v := check.Mixed(a); len(v) != 0 {
			t.Fatalf("seed %d: not mixed consistent: %v", seed, v)
		}
		if v := check.EntryConsistent(h, locks); len(v) != 0 {
			t.Fatalf("seed %d: not entry consistent: %v", seed, v)
		}
		ok, _, err := check.SequentiallyConsistent(a)
		if err != nil {
			t.Fatalf("seed %d: SC search: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: Corollary 1 violated (history not SC)", seed)
		}
	}
}

// TestCorollary2Property is the E9 property test for Corollary 2: random
// PRAM-consistent phased programs with PRAM reads always produce
// sequentially consistent histories.
func TestCorollary2Property(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for seed := int64(0); seed < 12; seed++ {
		h, err := RunRandomPhased(RandomPhasedConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := h.Analyze()
		if err != nil {
			t.Fatalf("seed %d: Analyze: %v", seed, err)
		}
		if v := check.Mixed(a); len(v) != 0 {
			t.Fatalf("seed %d: not mixed consistent: %v", seed, v)
		}
		if v := check.PRAMConsistent(h); len(v) != 0 {
			t.Fatalf("seed %d: not PRAM consistent: %v", seed, v)
		}
		ok, _, err := check.SequentiallyConsistent(a)
		if err != nil {
			t.Fatalf("seed %d: SC search: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: Corollary 2 violated (history not SC)", seed)
		}
	}
}

func TestRunExecutesEveryProc(t *testing.T) {
	sys := newSys(t, Config{Procs: 5})
	var mu sync.Mutex
	seen := make(map[int]bool)
	sys.Run(func(p *Proc) {
		mu.Lock()
		seen[p.ID()] = true
		mu.Unlock()
	})
	if len(seen) != 5 {
		t.Errorf("Run covered %d procs, want 5", len(seen))
	}
}

func TestPropagationModesEndToEnd(t *testing.T) {
	for _, mode := range []syncmgr.PropagationMode{syncmgr.Eager, syncmgr.Lazy, syncmgr.DemandDriven} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			sys := newSys(t, Config{Procs: 2, Propagation: mode})
			sys.Run(func(p *Proc) {
				for i := 0; i < 5; i++ {
					p.WLock("l")
					v := p.ReadCausal("s")
					p.Write("s", v+1)
					p.WUnlock("l")
				}
			})
			p := sys.Proc(0)
			p.WLock("l")
			got := p.ReadCausal("s")
			p.WUnlock("l")
			if got != 10 {
				t.Fatalf("final = %d, want 10", got)
			}
		})
	}
}
