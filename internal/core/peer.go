package core

import (
	"fmt"

	"mixedmem/internal/dsm"
	"mixedmem/internal/history"
	"mixedmem/internal/obs"
	"mixedmem/internal/syncmgr"
	"mixedmem/internal/transport"
)

// PeerConfig configures one process of a distributed deployment: a single
// mixed-consistency node running over a wire transport (one OS process per
// node, the paper's actual Maya-on-workstations setting). The peer whose ID
// equals ManagerProc additionally hosts the lock and barrier managers, just
// as NewSystem places them on one of the in-process nodes.
type PeerConfig struct {
	// ID is this process's identity, 0..N-1, where N is the transport's
	// node count. Required.
	ID int
	// Transport is the message substrate connecting the peers; it must
	// serve Recv for ID. Required. The peer owns it: Peer.Close closes it.
	Transport transport.Transport
	// Propagation selects how critical-section updates reach the next lock
	// holder. Zero value means Lazy.
	Propagation syncmgr.PropagationMode
	// ManagerProc hosts the lock and barrier managers (default process 0).
	ManagerProc int
	// PRAMOnly elides vector timestamps and keeps only the PRAM view, as
	// in Config.PRAMOnly.
	PRAMOnly bool
	// Scope restricts each location's updates to its registered readers, as
	// in Config.Placement. All peers of a deployment must agree on the map.
	Scope *dsm.ScopeMap
	// TrackAccess records this peer's read accesses for scope learning, as
	// in Config.TrackAccess.
	TrackAccess bool
	// Labels assigns lattice points to individual locations, as in
	// Config.Labels. All peers of a deployment must agree on the map.
	Labels map[string]history.Label
	// Trace, when non-nil, records this peer's memory operations into the
	// given history builder (one process's slice of a recorded history).
	Trace *history.Builder
	// Batch configures the per-destination update outbox, as in
	// Config.Batch. All peers of a deployment should agree on whether
	// batching is enabled only as a matter of symmetry — the receive path
	// handles single updates and batches regardless.
	Batch dsm.BatchConfig
	// TraceCapacity, when positive, gives this peer's node an event tracer
	// ring of that many slots, as in Config.TraceCapacity.
	TraceCapacity int
}

// Peer is one process's slice of a distributed mixed-consistency system: a
// Proc handle backed by a wire transport instead of the shared in-process
// fabric. The same application code runs against either — only the
// construction differs.
type Peer struct {
	proc *Proc
	tr   transport.Transport
}

// NewPeer builds the node, clients, and (on the manager process) the
// managers for one process of a distributed deployment, and starts the
// receive loop. Callers must Close the peer.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("core: peer: nil transport")
	}
	n := cfg.Transport.Nodes()
	if cfg.ID < 0 || cfg.ID >= n {
		return nil, fmt.Errorf("core: peer id %d out of range for %d nodes", cfg.ID, n)
	}
	if cfg.ManagerProc < 0 || cfg.ManagerProc >= n {
		return nil, fmt.Errorf("core: manager proc %d out of range", cfg.ManagerProc)
	}
	mode := cfg.Propagation
	if mode == 0 {
		mode = syncmgr.Lazy
	}
	d := syncmgr.NewDispatcher()
	var tracer *obs.Tracer
	if cfg.TraceCapacity > 0 {
		tracer = obs.NewTracer(cfg.ID, cfg.TraceCapacity)
	}
	node, err := dsm.NewNode(dsm.Config{
		ID: cfg.ID, N: n, Transport: cfg.Transport,
		Handler: d.Handle, PRAMOnly: cfg.PRAMOnly,
		Scope: cfg.Scope, TrackAccess: cfg.TrackAccess,
		Trace: cfg.Trace, Batch: cfg.Batch, Labels: cfg.Labels,
		Tracer: tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("core: peer node: %w", err)
	}
	if cfg.ID == cfg.ManagerProc {
		syncmgr.NewManager(cfg.ManagerProc, cfg.Transport, mode).Bind(d)
		syncmgr.NewBarrierManager(cfg.ManagerProc, cfg.Transport, n).Bind(d)
	}
	lc := syncmgr.NewClient(node, cfg.ManagerProc, mode)
	lc.Bind(d)
	bc := syncmgr.NewBarrierClient(node, cfg.ManagerProc)
	bc.Bind(d)
	return &Peer{
		proc: &Proc{node: node, locks: lc, barrier: bc, n: n},
		tr:   cfg.Transport,
	}, nil
}

// Proc returns the process handle. It implements the same Process interface
// as the in-process system's handles.
func (p *Peer) Proc() *Proc { return p.proc }

// NetStats returns the transport's message accounting (local sends only on
// distributed backends).
func (p *Peer) NetStats() transport.Stats { return p.tr.Stats() }

// Tracer returns the peer's event tracer, or nil when built without
// PeerConfig.TraceCapacity.
func (p *Peer) Tracer() *obs.Tracer { return p.proc.Tracer() }

// Registry builds the peer's unified metrics registry: the same sections as
// Proc-level registries (mem, sync, trace) plus this peer's transport
// accounting under "net" — including TCP link diagnostics when the
// transport is the tcp backend. `mixednode -obs` serves it as JSON.
func (p *Peer) Registry() *obs.Registry {
	r := obs.NewRegistry()
	registerProcSections(r, p.proc)
	tr := p.tr
	r.Register("net", func() any { return NetMetricsOf(tr) })
	return r
}

// Close shuts down the transport and the node.
func (p *Peer) Close() {
	p.tr.Close()
	p.proc.node.Close()
}
