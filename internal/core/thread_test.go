package core

import (
	"strconv"
	"sync/atomic"
	"testing"

	"mixedmem/internal/check"
	"mixedmem/internal/history"
)

func TestForallRunsAllBodies(t *testing.T) {
	sys := newSys(t, Config{Procs: 1})
	var count atomic.Int32
	seen := make([]atomic.Bool, 5)
	sys.Proc(0).Forall(5, func(i int, th ThreadOps) {
		count.Add(1)
		seen[i].Store(true)
	})
	if count.Load() != 5 {
		t.Fatalf("ran %d bodies, want 5", count.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("index %d never ran", i)
		}
	}
}

func TestForallZeroCount(t *testing.T) {
	sys := newSys(t, Config{Procs: 1})
	sys.Proc(0).Forall(0, func(int, ThreadOps) { t.Fatal("body ran") })
}

func TestForallThreadsShareReplica(t *testing.T) {
	sys := newSys(t, Config{Procs: 1})
	p := sys.Proc(0)
	p.Write("x", 9)
	var got int64
	p.Forall(1, func(i int, th ThreadOps) { got = th.ReadPRAM("x") })
	if got != 9 {
		t.Fatalf("thread read %d, want 9", got)
	}
	p.Forall(2, func(i int, th ThreadOps) {
		th.Write("t"+strconv.Itoa(i), int64(i+1))
	})
	if p.ReadPRAM("t0") != 1 || p.ReadPRAM("t1") != 2 {
		t.Fatal("parent does not see thread writes")
	}
}

func TestForallRecordsThreadsAndForkJoinEdges(t *testing.T) {
	sys := newSys(t, Config{Procs: 1, Record: true})
	p := sys.Proc(0)
	p.Write("before", 1)
	p.Forall(2, func(i int, th ThreadOps) {
		th.Write("w"+strconv.Itoa(i), int64(i+10))
	})
	p.Write("after", 2)

	h := sys.History()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var before, after, w0, w1 int
	for _, op := range h.Ops {
		switch op.Loc {
		case "before":
			before = op.ID
		case "after":
			after = op.ID
		case "w0":
			w0 = op.ID
		case "w1":
			w1 = op.ID
		}
	}
	// Threads carry distinct nonzero thread IDs.
	if h.Ops[w0].Thread == 0 || h.Ops[w1].Thread == 0 || h.Ops[w0].Thread == h.Ops[w1].Thread {
		t.Fatalf("thread ids: w0=%d w1=%d", h.Ops[w0].Thread, h.Ops[w1].Thread)
	}
	// Fork/join edges order the parent around the threads.
	for _, w := range []int{w0, w1} {
		if !a.PO.Has(before, w) {
			t.Errorf("missing fork edge before -> op %d", w)
		}
		if !a.PO.Has(w, after) {
			t.Errorf("missing join edge op %d -> after", w)
		}
	}
	// The two threads are unordered with each other.
	if a.PO.Has(w0, w1) || a.PO.Has(w1, w0) {
		t.Error("sibling threads must be unordered")
	}
}

func TestForallCoordinatorHandshakeRecorded(t *testing.T) {
	// The Figure 3 coordinator shape: the coordinator foralls awaits over
	// the workers' handshake variables, then writes replies. The recorded
	// multithreaded history must be mixed consistent and SC.
	sys := newSys(t, Config{Procs: 3, Record: true})
	sys.Run(func(p *Proc) {
		switch p.ID() {
		case 0: // coordinator
			p.Forall(2, func(i int, th ThreadOps) {
				th.Await("computed"+strconv.Itoa(i+1), 1)
			})
			for i := 1; i <= 2; i++ {
				p.Write("reply"+strconv.Itoa(i), int64(-i))
			}
		default: // workers
			p.Write("data"+strconv.Itoa(p.ID()), int64(100+p.ID()))
			p.Write("computed"+strconv.Itoa(p.ID()), 1)
			p.Await("reply"+strconv.Itoa(p.ID()), int64(-p.ID()))
			// The coordinator's reply causally includes both workers'
			// data (it awaited both computed flags before replying).
			for q := 1; q <= 2; q++ {
				if got := p.ReadCausal("data" + strconv.Itoa(q)); got != int64(100+q) {
					t.Errorf("proc %d read data%d = %d", p.ID(), q, got)
				}
			}
		}
	})
	h := sys.History()
	a, err := h.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if v := check.Mixed(a); len(v) != 0 {
		t.Fatalf("not mixed consistent: %v", v)
	}
	ok, _, err := check.SequentiallyConsistent(a)
	if err != nil || !ok {
		t.Fatalf("not SC: ok=%v err=%v", ok, err)
	}
}

func TestForallFreshThreadIDsAcrossCalls(t *testing.T) {
	sys := newSys(t, Config{Procs: 1, Record: true})
	p := sys.Proc(0)
	p.Forall(2, func(i int, th ThreadOps) { th.Write("a"+strconv.Itoa(i), int64(i+1)) })
	p.Forall(2, func(i int, th ThreadOps) { th.Write("b"+strconv.Itoa(i), int64(i+10)) })
	h := sys.History()
	threads := make(map[int]bool)
	for _, op := range h.Ops {
		if op.Kind == history.Write {
			threads[op.Thread] = true
		}
	}
	if len(threads) != 4 {
		t.Fatalf("expected 4 distinct thread ids, got %d", len(threads))
	}
}

func TestForallThreadCounterOps(t *testing.T) {
	sys := newSys(t, Config{Procs: 1})
	p := sys.Proc(0)
	p.Forall(4, func(i int, th ThreadOps) {
		th.Add("c", 1)
		th.AddFloat("f", 0.5)
	})
	if got := p.ReadPRAM("c"); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if got := ReadPRAMFloat(p, "f"); got != 2.0 {
		t.Fatalf("float counter = %v, want 2", got)
	}
}
