package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"

	"mixedmem/internal/history"
)

// This file generates random well-structured programs, runs them on a
// recording System, and returns the recorded history. The checker replays
// these histories to validate Theorem 1's corollaries end to end
// (EXPERIMENTS.md E9): entry-consistent programs with causal reads and
// PRAM-consistent programs with PRAM reads must always produce sequentially
// consistent histories.

// RandomEntryConsistentConfig sizes a random entry-consistent program.
type RandomEntryConsistentConfig struct {
	// Procs is the number of processes (default 3).
	Procs int
	// Vars is the number of shared variables, each with its own lock
	// (default 2).
	Vars int
	// OpsPerProc is the number of critical sections per process
	// (default 3).
	OpsPerProc int
	// Seed drives all random choices.
	Seed int64
}

func (c *RandomEntryConsistentConfig) fill() {
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.Vars == 0 {
		c.Vars = 2
	}
	if c.OpsPerProc == 0 {
		c.OpsPerProc = 3
	}
}

// RunRandomEntryConsistent runs a random entry-consistent program (every
// access under the corresponding lock, reads causal) and returns the
// recorded history plus the variable-to-lock assignment.
func RunRandomEntryConsistent(cfg RandomEntryConsistentConfig) (*history.History, map[string]string, error) {
	cfg.fill()
	sys, err := NewSystem(Config{Procs: cfg.Procs, Record: true})
	if err != nil {
		return nil, nil, fmt.Errorf("random entry-consistent: %w", err)
	}
	defer sys.Close()

	locks := make(map[string]string, cfg.Vars)
	for v := 0; v < cfg.Vars; v++ {
		locks["x"+strconv.Itoa(v)] = "lx" + strconv.Itoa(v)
	}

	// Each process owns an independent, deterministic random stream; a
	// global counter keeps write values unique.
	var unique atomic.Int64
	sys.Run(func(p *Proc) {
		r := rand.New(rand.NewSource(cfg.Seed + int64(p.ID())))
		for i := 0; i < cfg.OpsPerProc; i++ {
			v := r.Intn(cfg.Vars)
			loc := "x" + strconv.Itoa(v)
			lock := locks[loc]
			if r.Intn(3) == 0 {
				// Read-only section under a read lock.
				p.RLock(lock)
				p.ReadCausal(loc)
				p.RUnlock(lock)
				continue
			}
			p.WLock(lock)
			p.ReadCausal(loc)
			p.Write(loc, unique.Add(1))
			p.WUnlock(lock)
		}
	})
	return sys.History(), locks, nil
}

// RandomPhasedConfig sizes a random PRAM-consistent phased program.
type RandomPhasedConfig struct {
	// Procs is the number of processes (default 3).
	Procs int
	// Phases is the number of compute phases (default 2).
	Phases int
	// Seed drives all random choices.
	Seed int64
}

func (c *RandomPhasedConfig) fill() {
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.Phases == 0 {
		c.Phases = 2
	}
}

// RunRandomPhased runs a random PRAM-consistent program in the shape of
// Figure 2: in each phase every process writes its own variable exactly
// once, crosses a barrier, reads a random subset of the others' variables
// with PRAM reads, and crosses a second barrier. No variable is both read
// and written in one phase, so the program is PRAM-consistent.
func RunRandomPhased(cfg RandomPhasedConfig) (*history.History, error) {
	cfg.fill()
	sys, err := NewSystem(Config{Procs: cfg.Procs, Record: true})
	if err != nil {
		return nil, fmt.Errorf("random phased: %w", err)
	}
	defer sys.Close()

	sys.Run(func(p *Proc) {
		r := rand.New(rand.NewSource(cfg.Seed + 1000*int64(p.ID())))
		for ph := 1; ph <= cfg.Phases; ph++ {
			// Unique value: phase and process determine it.
			p.Write("v"+strconv.Itoa(p.ID()), int64(ph*100+p.ID()+1))
			p.Barrier()
			for q := 0; q < p.N(); q++ {
				if q != p.ID() && r.Intn(2) == 0 {
					p.ReadPRAM("v" + strconv.Itoa(q))
				}
			}
			p.Barrier()
		}
	})
	return sys.History(), nil
}
