package main

import "testing"

// TestRun exercises the example at a small size, so `go test ./...` catches
// API drift in the solver walkthrough.
func TestRun(t *testing.T) {
	if err := run(12, 3, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}
