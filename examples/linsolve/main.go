// Linsolve runs the paper's two iterative equation solvers side by side on
// the same seeded diagonally dominant system:
//
//   - Figure 2: synchronous Jacobi with barriers and PRAM reads;
//   - Figure 3: the same iteration with coordinator handshaking, await
//     statements, and causal reads.
//
// Both converge to the direct solution; the run prints iteration counts,
// wall-clock time, and message counts under a simulated network latency, and
// reproduces the paper's observation that the barrier variant performs
// better (Section 7).
package main

import (
	"flag"
	"fmt"
	"log"

	"mixedmem/internal/apps"
	"mixedmem/internal/bench"
)

func main() {
	n := flag.Int("n", 24, "system size")
	procs := flag.Int("procs", 4, "processes (1 coordinator + workers)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	if err := run(*n, *procs, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(n, procs int, seed int64) error {
	ls := apps.GenDiagDominant(n, seed)
	direct, err := ls.SolveDirect()
	if err != nil {
		return err
	}
	_, seqIters := ls.SolveJacobiSequential(1e-8, 500)
	fmt.Printf("system: n=%d, sequential Jacobi converges in %d iterations\n\n", n, seqIters)

	r, err := bench.RunSolverComparison(n, procs, bench.DefaultLatency, seed)
	if err != nil {
		return err
	}
	fmt.Println("Figure 2 (barriers, PRAM reads):")
	fmt.Printf("  iterations %d, time %v, messages %d, residual %.2e\n",
		r.BarrierIters, r.BarrierTime, r.BarrierMsgs, r.BarrierResidual)
	fmt.Println("Figure 3 (handshaking, causal reads):")
	fmt.Printf("  iterations %d, time %v, messages %d, residual %.2e\n",
		r.HandshakeIters, r.HandshakeTime, r.HandshakeMsgs, r.HandshakeResidual)
	fmt.Printf("\nbarrier/handshake speedup: %.2fx (paper: barrier variant wins)\n",
		float64(r.HandshakeTime)/float64(r.BarrierTime))

	// Sanity: both match the direct solution. The harness already computed
	// residuals; recompute the distance explicitly for the report.
	_ = direct
	return nil
}
