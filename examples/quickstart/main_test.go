package main

import "testing"

// TestRun exercises the example end to end, so `go test ./...` catches API
// drift in the code users copy first.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}
