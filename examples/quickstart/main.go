// Quickstart: the smallest useful mixed-consistency program — a
// producer/consumer pair using an await statement, followed by a
// barrier-synchronized phase exchange and a lock-protected counter, touring
// all four synchronization primitives of the model.
package main

import (
	"fmt"
	"log"
	"strconv"

	"mixedmem/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := core.NewSystem(core.Config{Procs: 3})
	if err != nil {
		return err
	}
	defer sys.Close()

	// 1. Producer/consumer with await (Section 3.1.3): the producer writes
	// data and then a flag; the consumer awaits the flag. PRAM reads
	// suffice because the flag write follows the data write on the same
	// process (FIFO pipelining).
	sys.Run(func(p *core.Proc) {
		switch p.ID() {
		case 0:
			p.Write("data", 42)
			p.Write("ready", 1)
		case 1:
			p.AwaitPRAM("ready", 1)
			fmt.Printf("consumer: data = %d (PRAM read after await)\n", p.ReadPRAM("data"))
		default:
			// Process 2 sits this phase out.
		}
	})

	// 2. Phase exchange with a barrier (Section 3.1.2): everyone writes its
	// own slot, crosses the barrier, and reads everyone else's with PRAM
	// reads — the Figure 2 pattern (Corollary 2 makes it behave like
	// sequentially consistent memory).
	sys.Run(func(p *core.Proc) {
		p.Write("slot"+strconv.Itoa(p.ID()), int64(100+p.ID()))
		p.Barrier()
		sum := int64(0)
		for q := 0; q < p.N(); q++ {
			sum += p.ReadPRAM("slot" + strconv.Itoa(q))
		}
		if p.ID() == 0 {
			fmt.Printf("barrier phase: sum of all slots = %d\n", sum)
		}
	})

	// 3. A shared counter under a write lock (Section 3.1.1): causal reads
	// inside the critical section see the previous holder's update — the
	// entry-consistent pattern (Corollary 1).
	sys.Run(func(p *core.Proc) {
		for i := 0; i < 5; i++ {
			p.WLock("counter-lock")
			v := p.ReadCausal("counter")
			p.Write("counter", v+1)
			p.WUnlock("counter-lock")
		}
	})
	p0 := sys.Proc(0)
	p0.WLock("counter-lock")
	fmt.Printf("locked counter after 3 procs x 5 increments = %d\n", p0.ReadCausal("counter"))
	p0.WUnlock("counter-lock")

	// 4. The same counter as a commutative counter object (Section 5.3):
	// no locks at all.
	sys.Run(func(p *core.Proc) {
		for i := 0; i < 5; i++ {
			p.Add("free-counter", 1)
		}
		p.Barrier()
		if p.ID() == 0 {
			fmt.Printf("counter object without locks = %d\n", p.ReadPRAM("free-counter"))
		}
	})

	fmt.Printf("network: %s\n", sys.NetStats())
	return nil
}
