package main

import "testing"

// TestRun exercises the example at a small size, so `go test ./...` catches
// API drift in the factorization walkthrough.
func TestRun(t *testing.T) {
	if err := run(10, 2, 0.3, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}
