// Cholesky runs the Figure 5 sparse Cholesky factorization in both of the
// paper's forms on the same seeded sparse SPD matrix:
//
//   - the lock-based algorithm: the owner of column j awaits count[j] = 0,
//     then updates every dependent column inside a write-lock critical
//     section (causal reads, per Theorem 1);
//   - the counter-object variant (Section 5.3): matrix entries and
//     dependency counts become commutative counters and the critical
//     sections disappear.
//
// Both are validated against the sequential factorization; the run then
// times them under a simulated network latency, reproducing the Section 7
// claim that the counter-object algorithm wins significantly.
package main

import (
	"flag"
	"fmt"
	"log"

	"mixedmem/internal/apps"
	"mixedmem/internal/bench"
)

func main() {
	n := flag.Int("n", 32, "matrix size")
	procs := flag.Int("procs", 4, "processes")
	density := flag.Float64("density", 0.3, "structural density of the generator")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	if err := run(*n, *procs, *density, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(n, procs int, density float64, seed int64) error {
	m := apps.GenSparseSPD(n, density, seed)
	nnz, deps := 0, 0
	for i := 0; i < m.N; i++ {
		for j := 0; j <= i; j++ {
			if m.Fill[i][j] {
				nnz++
			}
		}
	}
	for _, c := range m.Count {
		deps += c
	}
	fmt.Printf("matrix: n=%d, %d structural nonzeros after symbolic factorization, %d column dependencies\n\n",
		n, nnz, deps)

	r, err := bench.RunCholeskyComparison(n, procs, density, bench.DefaultLatency, seed)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5 (write locks, causal reads):")
	fmt.Printf("  time %v, messages %d, lock acquires %d, factor error %.2e\n",
		r.LockTime, r.LockMsgs, r.LockAcquires, r.LockError)
	fmt.Println("Counter objects (commutative decrements, no critical sections):")
	fmt.Printf("  time %v, messages %d, factor error %.2e\n",
		r.CounterTime, r.CounterMsgs, r.CounterError)
	fmt.Printf("\ncounter/lock speedup: %.2fx (paper: counter variant wins significantly)\n",
		float64(r.LockTime)/float64(r.CounterTime))
	return nil
}
