package main

import "testing"

// TestRun exercises the example with a short stream, so `go test ./...`
// catches API drift in the producer/consumer walkthrough.
func TestRun(t *testing.T) {
	if err := run(6, 2, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}
