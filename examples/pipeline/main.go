// Pipeline runs the producer/consumer dataflow of Section 2's remark that
// await statements "capture the producer/consumer paradigm in an efficient
// manner": a stream of items flows through a chain of transformation stages,
// once with credit-based await handoff (no locks at all) and once with a
// lock-protected buffer the consumers poll under read locks. Both produce
// the same outputs; the await variant wins on time and messages.
//
// It also demonstrates two newer corners of the model: a subset barrier
// between just the pipeline's endpoints, and a forall on the final stage
// fanning out verification reads across concurrent threads.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"sync/atomic"

	"mixedmem/internal/apps"
	"mixedmem/internal/bench"
	"mixedmem/internal/core"
)

func main() {
	items := flag.Int("items", 40, "items through the pipeline")
	procs := flag.Int("procs", 4, "processes (stages = procs-1)")
	seed := flag.Int64("seed", 1, "input seed")
	flag.Parse()
	if err := run(*items, *procs, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(items, procs int, seed int64) error {
	r, err := bench.RunPipelineComparison(items, procs, bench.DefaultLatency, seed)
	if err != nil {
		return err
	}
	fmt.Println("producer/consumer pipeline,", items, "items through", procs-1, "stages")
	fmt.Printf("  await handoff: %v, %d messages (zero lock traffic)\n", r.AwaitTime, r.AwaitMsgs)
	fmt.Printf("  lock polling:  %v, %d messages\n", r.LockTime, r.LockMsgs)
	fmt.Printf("  await speedup: %.2fx, outputs match reference: %v\n\n",
		float64(r.LockTime)/float64(r.AwaitTime), r.OutputsMatch)

	// Subset barrier + forall demo: the first and last process synchronize
	// privately, then the last stage verifies a sample of outputs on
	// concurrent threads.
	sys, err := core.NewSystem(core.Config{Procs: procs})
	if err != nil {
		return err
	}
	defer sys.Close()
	cfg := apps.PipelineConfig{Items: items, Seed: seed}
	ref := apps.PipelineSequential(cfg, procs-1)
	var sampled atomic.Int64
	sys.Run(func(p *core.Proc) {
		out := apps.PipelineAwait(p, cfg)
		endpoints := []int{0, procs - 1}
		if p.ID() == 0 || p.ID() == procs-1 {
			// Only the endpoints rendezvous; middle stages continue.
			p.BarrierGroup("endpoints", endpoints)
		}
		if out != nil {
			// Publish a sample of outputs, then verify on 4 threads.
			for i := 0; i < len(out); i += 10 {
				p.Write("sample"+strconv.Itoa(i), out[i])
			}
			p.Forall(4, func(t int, th core.ThreadOps) {
				for i := t * 10; i < len(out); i += 40 {
					if th.ReadPRAM("sample"+strconv.Itoa(i)) == ref[i] {
						sampled.Add(1)
					}
				}
			})
		}
	})
	fmt.Printf("verified %d sampled outputs on concurrent threads of the last stage\n", sampled.Load())
	return nil
}
