// Emfield runs the Figure 4 electromagnetic-field computation: a staggered
// 1-D grid of E and H samples, block-partitioned across processes, advanced
// in alternating barrier-separated phases with PRAM reads. Only boundary
// samples cross the shared memory; interior cells never leave their owner —
// the memory system supplies the "ghost copies" the paper discusses.
package main

import (
	"flag"
	"fmt"
	"log"

	"mixedmem/internal/apps"
	"mixedmem/internal/bench"
	"mixedmem/internal/core"
	"mixedmem/internal/network"
)

func main() {
	size := flag.Int("size", 96, "grid cells")
	steps := flag.Int("steps", 40, "time steps")
	procs := flag.Int("procs", 4, "processes")
	seed := flag.Int64("seed", 1, "initial-field seed")
	flag.Parse()
	if err := run(*size, *steps, *procs, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(size, steps, procs int, seed int64) error {
	prob := apps.GenEMProblem(size, steps, seed)
	refE, _ := prob.SolveSequential()

	// Zero-latency run to verify exactness.
	sys, err := core.NewSystem(core.Config{Procs: procs})
	if err != nil {
		return err
	}
	results := make([]apps.EMResult, procs)
	sys.Run(func(p *core.Proc) {
		results[p.ID()] = apps.SolveEMField(p, prob, apps.SolveOptions{})
	})
	var worst float64
	for _, r := range results {
		for i := r.Lo; i < r.Hi; i++ {
			if d := r.E[i-r.Lo] - refE[i]; d > worst || -d > worst {
				if d < 0 {
					d = -d
				}
				worst = d
			}
		}
	}
	stats := sys.NetStats()
	sys.Close()
	fmt.Printf("grid=%d steps=%d procs=%d\n", size, steps, procs)
	fmt.Printf("max |parallel - sequential| = %g (bit-exact expected)\n", worst)
	fmt.Printf("update messages: %d — boundary-only sharing; a naive all-cells\n",
		stats.PerKind["update"])
	fmt.Printf("implementation would broadcast about %d\n\n", size*steps*2)

	// Timed run under network latency for the performance row.
	r, err := bench.RunEMField(size, steps, procs, bench.DefaultLatency, seed)
	if err != nil {
		return err
	}
	fmt.Printf("with %v/message latency: %s\n", latencyOf(bench.DefaultLatency), r)
	return nil
}

func latencyOf(m network.LatencyModel) string {
	return m.Fixed.String()
}
