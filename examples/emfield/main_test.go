package main

import "testing"

// TestRun exercises the example at a small grid, so `go test ./...` catches
// API drift in the field-computation walkthrough.
func TestRun(t *testing.T) {
	if err := run(16, 4, 2, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}
