package main

import "testing"

// TestRun exercises the example at a small size, so `go test ./...` pins the
// Slow-label relaxation's convergence alongside the PRAM baseline.
func TestRun(t *testing.T) {
	if err := run(12, 3, 60, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}
