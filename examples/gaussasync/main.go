// Gaussasync runs the Section 7 asynchronous relaxation at the two weak ends
// of the label lattice on the same seeded diagonally dominant system:
//
//   - plain PRAM (the paper's setting): chaotic Gauss–Seidel sweeps with no
//     barriers, locks, or awaits during the iteration;
//   - Slow (the lattice bottom): the same sweeps with the estimate cells
//     labeled Slow and slow reads throughout.
//
// Each estimate cell has exactly one writer, so per-location FIFO already
// hands every reader a monotone sequence of refinements — the cross-location
// per-sender ordering PRAM adds is not load-bearing, and dropping to Slow
// additionally sheds the vector timestamp from every update on the wire.
// Both runs converge to the direct solution; the run prints final errors and
// wall-clock time for each label.
package main

import (
	"flag"
	"fmt"
	"log"

	"mixedmem/internal/bench"
)

func main() {
	n := flag.Int("n", 24, "system size")
	procs := flag.Int("procs", 4, "processes")
	rounds := flag.Int("rounds", 60, "asynchronous sweeps per process")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	if err := run(*n, *procs, *rounds, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(n, procs, rounds int, seed int64) error {
	pram, err := bench.RunGaussSeidel(n, procs, rounds, seed)
	if err != nil {
		return err
	}
	slow, err := bench.RunGaussSeidelSlow(n, procs, rounds, seed)
	if err != nil {
		return err
	}
	fmt.Println("asynchronous Gauss–Seidel, PRAM estimate cells:")
	fmt.Printf("  %v\n", pram)
	fmt.Println("asynchronous Gauss–Seidel, Slow estimate cells (timestamp-free wire):")
	fmt.Printf("  %v\n", slow)
	const tol = 1e-6
	if pram.Error > tol || slow.Error > tol {
		return fmt.Errorf("relaxation did not converge: pram=%.3e slow=%.3e (tol %.0e)",
			pram.Error, slow.Error, tol)
	}
	fmt.Printf("\nboth labels converge below %.0e: single-writer cells make Slow sufficient\n", tol)
	return nil
}
