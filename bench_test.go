package mixedmem_test

// One benchmark per experiment of EXPERIMENTS.md, regenerating the paper's
// figures and claims under the Go benchmark harness. The fabric runs with
// zero modeled latency here so iterations stay fast; protocol costs are
// reported as custom metrics (msgs/op, iters/op) and the wall-clock ordering
// between competing variants is the paper's claim. cmd/mixedbench runs the
// same experiments under a realistic latency model.

import (
	"testing"

	"mixedmem/internal/apps"
	"mixedmem/internal/bench"
	"mixedmem/internal/check"
	"mixedmem/internal/core"
	"mixedmem/internal/history"
	"mixedmem/internal/network"
	"mixedmem/internal/seqmem"
	"mixedmem/internal/syncmgr"
)

var zeroLatency = network.LatencyModel{}

// --- E1: Figure 1 -----------------------------------------------------------

func BenchmarkFigure1Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFigure1()
		if err != nil || !r.PropertiesHold {
			b.Fatalf("figure 1 failed: %v %+v", err, r)
		}
	}
}

// --- E2: Figure 2 vs Figure 3 ------------------------------------------------

func benchSolver(b *testing.B, handshake bool) {
	b.Helper()
	ls := apps.GenDiagDominant(16, 1)
	var msgs uint64
	var iters int
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{Procs: 4, Latency: zeroLatency})
		if err != nil {
			b.Fatal(err)
		}
		var res apps.SolveResult
		sys.Run(func(p *core.Proc) {
			var r apps.SolveResult
			if handshake {
				r = apps.SolveHandshake(p, ls, apps.SolveOptions{Tol: 1e-8})
			} else {
				r = apps.SolveBarrier(p, ls, apps.SolveOptions{Tol: 1e-8})
			}
			if p.ID() == 0 {
				res = r
			}
		})
		if ls.Residual(res.X) > 1e-7 {
			b.Fatalf("solver did not converge: residual %v", ls.Residual(res.X))
		}
		msgs += sys.NetStats().MessagesSent
		iters = res.Iters
		sys.Close()
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(iters), "iters")
}

func BenchmarkLinSolveBarrier(b *testing.B)   { benchSolver(b, false) }
func BenchmarkLinSolveHandshake(b *testing.B) { benchSolver(b, true) }

// --- E3: PRAM insufficiency ---------------------------------------------------

func BenchmarkPRAMInsufficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunPRAMInsufficiency()
		if err != nil || !r.Demonstrated {
			b.Fatalf("not demonstrated: %v %+v", err, r)
		}
	}
}

// --- E4: Figure 4 -------------------------------------------------------------

func BenchmarkEMField(b *testing.B) {
	prob := apps.GenEMProblem(64, 20, 1)
	var msgs uint64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{Procs: 4, Latency: zeroLatency})
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(func(p *core.Proc) {
			apps.SolveEMField(p, prob, apps.SolveOptions{})
		})
		msgs += sys.NetStats().MessagesSent
		sys.Close()
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}

func BenchmarkEMFieldSequentialReference(b *testing.B) {
	prob := apps.GenEMProblem(64, 20, 1)
	for i := 0; i < b.N; i++ {
		prob.SolveSequential()
	}
}

// --- E5: Figure 5 -------------------------------------------------------------

func benchCholesky(b *testing.B, counters bool) {
	b.Helper()
	m := apps.GenSparseSPD(24, 0.3, 1)
	ref, err := m.CholeskySequential()
	if err != nil {
		b.Fatal(err)
	}
	var msgs uint64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{Procs: 4, Latency: zeroLatency})
		if err != nil {
			b.Fatal(err)
		}
		var res apps.CholeskyResult
		sys.Run(func(p *core.Proc) {
			var r apps.CholeskyResult
			if counters {
				r = apps.CholeskyCounters(p, m, apps.SolveOptions{})
			} else {
				r = apps.CholeskyLocks(p, m, apps.SolveOptions{})
			}
			if p.ID() == 0 {
				res = r
			}
		})
		if d := m.FactorError(res.L, ref); d > 1e-6 {
			b.Fatalf("factor error %v", d)
		}
		msgs += sys.NetStats().MessagesSent
		sys.Close()
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}

func BenchmarkCholeskyLocks(b *testing.B)    { benchCholesky(b, false) }
func BenchmarkCholeskyCounters(b *testing.B) { benchCholesky(b, true) }

// --- E6: propagation modes ----------------------------------------------------

func benchPropagation(b *testing.B, mode syncmgr.PropagationMode) {
	b.Helper()
	w := bench.PropagationWorkload{Procs: 4, Handoffs: 8, WritesPerCS: 8}
	var msgs uint64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunPropagation(mode, w, zeroLatency, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		msgs += r.Msgs
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}

func BenchmarkLockPropagationEager(b *testing.B)  { benchPropagation(b, syncmgr.Eager) }
func BenchmarkLockPropagationLazy(b *testing.B)   { benchPropagation(b, syncmgr.Lazy) }
func BenchmarkLockPropagationDemand(b *testing.B) { benchPropagation(b, syncmgr.DemandDriven) }

// --- E7: asynchronous relaxation ------------------------------------------------

func BenchmarkGaussSeidelPRAM(b *testing.B) {
	ls := apps.GenDiagDominant(16, 1)
	direct, err := ls.SolveDirect()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{Procs: 4})
		if err != nil {
			b.Fatal(err)
		}
		var res apps.SolveResult
		sys.Run(func(p *core.Proc) {
			r := apps.SolveAsyncPRAM(p, ls, 60)
			if p.ID() == 0 {
				res = r
			}
		})
		if d := apps.MaxAbsDiff(res.X, direct); d > 1e-5 {
			b.Fatalf("did not converge: %v", d)
		}
		sys.Close()
	}
}

// --- E8: access-latency spectrum -----------------------------------------------

func BenchmarkMemoryLatencyMixedWrite(b *testing.B) {
	sys, err := core.NewSystem(core.Config{Procs: 2, Latency: zeroLatency})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	p := sys.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Write("w", int64(i+1))
	}
}

func BenchmarkMemoryLatencyPRAMRead(b *testing.B) {
	sys, err := core.NewSystem(core.Config{Procs: 2, Latency: zeroLatency})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	p := sys.Proc(0)
	p.Write("w", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ReadPRAM("w")
	}
}

func BenchmarkMemoryLatencyCausalRead(b *testing.B) {
	sys, err := core.NewSystem(core.Config{Procs: 2, Latency: zeroLatency})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	p := sys.Proc(0)
	p.Write("w", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ReadCausal("w")
	}
}

func BenchmarkMemoryLatencySCWrite(b *testing.B) {
	sys, err := seqmem.NewSystem(seqmem.Config{Procs: 2, Latency: zeroLatency})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	p := sys.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Write("w", int64(i+1))
	}
}

func BenchmarkMemoryLatencySCRead(b *testing.B) {
	sys, err := seqmem.NewSystem(seqmem.Config{Procs: 2, Latency: zeroLatency})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	p := sys.Proc(0)
	p.Write("w", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ReadPRAM("w")
	}
}

// --- E9 and checker internals ----------------------------------------------------

func BenchmarkCorollaryCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, locks, err := core.RunRandomEntryConsistent(core.RandomEntryConsistentConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		a, err := h.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		if len(check.Mixed(a)) != 0 || len(check.EntryConsistent(h, locks)) != 0 {
			b.Fatal("violation in entry-consistent run")
		}
		ok, _, err := check.SequentiallyConsistent(a)
		if err != nil || !ok {
			b.Fatalf("not SC: %v", err)
		}
	}
}

func BenchmarkHistoryAnalysis(b *testing.B) {
	// Analysis cost on a mid-size recorded history.
	h, _, err := core.RunRandomEntryConsistent(core.RandomEntryConsistentConfig{
		Procs: 4, Vars: 3, OpsPerProc: 6, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSCCheck(b *testing.B) {
	bld := history.NewBuilder(3)
	for p := 0; p < 3; p++ {
		for i := 0; i < 6; i++ {
			bld.Write(p, "x", int64(p*100+i+1))
		}
	}
	h := bld.History()
	a, err := h.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := check.SequentiallyConsistent(a)
		if err != nil || !ok {
			b.Fatalf("unexpected: ok=%v err=%v", ok, err)
		}
	}
}

// --- A1/A2 ablations -------------------------------------------------------------

func BenchmarkTimestampElision(b *testing.B) {
	var fullBytes, elidedBytes uint64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunTimestampAblation(12, 3, zeroLatency, 1)
		if err != nil || !r.ResidualsMatch {
			b.Fatalf("ablation failed: %v %+v", err, r)
		}
		fullBytes, elidedBytes = r.FullBytes, r.ElidedBytes
	}
	b.ReportMetric(float64(fullBytes), "bytes-full")
	b.ReportMetric(float64(elidedBytes), "bytes-elided")
}

func BenchmarkPropagationCostSweep(b *testing.B) {
	lat := network.LatencyModel{Fixed: 50 * 1000} // 50µs
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunPropagationCostSweep(5, 50, lat); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: producer/consumer via awaits --------------------------------------------

func benchPipeline(b *testing.B, locks bool) {
	b.Helper()
	cfg := apps.PipelineConfig{Items: 20, Seed: 1}
	ref := apps.PipelineSequential(cfg, 2)
	var msgs uint64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{Procs: 3, Latency: zeroLatency})
		if err != nil {
			b.Fatal(err)
		}
		var out []int64
		sys.Run(func(p *core.Proc) {
			var r []int64
			if locks {
				r = apps.PipelineLocks(p, cfg)
			} else {
				r = apps.PipelineAwait(p, cfg)
			}
			if r != nil {
				out = r
			}
		})
		if len(out) != len(ref) || out[len(out)-1] != ref[len(ref)-1] {
			b.Fatal("pipeline output mismatch")
		}
		msgs += sys.NetStats().MessagesSent
		sys.Close()
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}

func BenchmarkPipelineAwait(b *testing.B) { benchPipeline(b, false) }
func BenchmarkPipelineLocks(b *testing.B) { benchPipeline(b, true) }
