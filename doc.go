// Package mixedmem is a from-scratch Go reproduction of "Mixed Consistency:
// A Model for Parallel Programming" (Agrawal, Choy, Leong, Singh, PODC
// 1994): a distributed-shared-memory programming model combining PRAM and
// causal reads with read/write locks, barriers, and await statements.
//
// The library lives under internal/:
//
//   - internal/core — the programming model (System, Proc, the Process
//     interface);
//   - internal/dsm — the replicated memory runtime with its PRAM and causal
//     apply pipelines;
//   - internal/syncmgr — lock and barrier managers with eager, lazy, and
//     demand-driven propagation;
//   - internal/network — the simulated FIFO message-passing fabric;
//   - internal/history, internal/check — the formal model of Section 3 and
//     the consistency checkers (Definitions 1–4, Theorem 1, Corollaries
//     1–2);
//   - internal/seqmem — the sequentially consistent central-server baseline;
//   - internal/apps — the Section 5 applications;
//   - internal/bench — the experiment harness behind cmd/mixedbench and the
//     benchmarks in bench_test.go.
//
// See README.md for a quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record.
package mixedmem
