module mixedmem

go 1.22
